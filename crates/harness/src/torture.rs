//! Seed-driven crash-storm torture rig with an exactly-once oracle.
//!
//! The rig replaces the single scripted kill-point of [`crate::crashes`]
//! with randomized but fully reproducible fault schedules: every choice —
//! client count, per-request `m`, lossy links, which MSP dies, at which
//! [`CrashPoint`], after how many site traversals, and whether the
//! *restart* is crashed again mid-recovery (§4.5 multi-crash) — is drawn
//! from the vendored `rand` shim seeded with one `u64`. No wall clock, no
//! global randomness: a failing run replays from its seed, and every
//! failure message embeds that seed.
//!
//! One run ([`run_torture`]) drives 8–32 concurrent clients, each issuing
//! requests with `m ∈ 1..=4`, through one of the five §5.2
//! [`SystemConfig`]s while a controller walks the schedule's crash
//! events. The oracle has three layers:
//!
//! 1. **Per-client ledger** — every reply must carry the session counter
//!    `k` equal to the request's 1-based index: a lost execution or a
//!    duplicate shifts `k` and is caught at the exact request.
//! 2. **Shared-state model** — after the storm settles (clients done,
//!    `recovery_complete()` drained on both MSPs) SV0/SV1 at MSP1 must
//!    equal the total request count and SV2/SV3 at MSP2 the total number
//!    of `ServiceMethod2` calls: each request executed *exactly once*
//!    against shared state too.
//! 3. **Post-mortem log audit** ([`audit_log`]) — the final on-disk log
//!    of each log-based MSP is re-opened and structurally verified:
//!    monotone LSNs, every frame decodes, recovery epochs strictly
//!    increase, every EOS fences an orphan record of its own session
//!    *behind* it, and no frame exists past the scan end (the bytes
//!    beyond the durable stream must be unwritten).
//!
//! Crash events only target the log-based configurations — the §5.2
//! baselines have no recovery story for a killed MSP, so they get the
//! message-fault dimension (drops/duplicates) and the same oracle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msp_types::codec::Encode;
use msp_types::Lsn;
use msp_wal::log::DATA_START;
use msp_wal::{
    CrashPoint, Disk, DiskModel, FaultPlan, FlushPolicy, LogRecord, MemDisk, PhysicalLog,
};

use crate::workload::{reply_counter, request_payload, MSP1};
use crate::world::{FlushMode, SystemConfig, World, WorldOptions};

/// Traffic shape a storm drives through the workload. Each shape keeps
/// the three oracle layers intact — it only changes *where* the pressure
/// lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// The original mix: `m ∈ 1..=4`, every client keeps one session for
    /// the whole storm.
    Default,
    /// Shared-variable-heavy: `m ∈ 3..=4`, so nearly every request is a
    /// multi-call fan-out hammering SV2/SV3 (and the distributed-flush
    /// path in front of every boundary crossing).
    SharedHeavy,
    /// Session churn: clients end their session at seed-chosen points and
    /// continue on a fresh one — EOS records, session teardown, and
    /// create-on-first-use all run *during* the crash storm. The
    /// per-client ledger resets its expected counter at each churn.
    SessionChurn,
    /// Deep call chains: every request runs `m = 4`, so the pipelined
    /// outgoing-send path (gate-parked envelopes, token-parked workers) is hot
    /// on every request, and roughly half the crash events are retargeted
    /// onto the PR-6 crash sites — the parked-send window on MSP1
    /// (`SendGateIssue`, Pessimistic) and the flush-serving participant
    /// on MSP2 (`FlushServe`, LoOptimistic).
    DeepChain,
    /// Session churn on the scale-out configuration: the same churn
    /// pressure as [`WorkloadShape::SessionChurn`], but each MSP runs its
    /// WAL striped over two disks and its runtime sharded two ways — so
    /// crash recovery must merge per-stripe position streams and the
    /// exactly-once oracle must hold across shard-routed sessions. The
    /// post-mortem audit switches to the striped (merged-gsn) scan.
    StripedChurn,
    /// The Default traffic mix, but every shared-variable RMW routes
    /// through the registered `bump` shared op and both MSPs run with
    /// `adaptive_logging`: the per-variable diet decides between compact
    /// `SharedOp` records and value-logged pairs live, and recovery must
    /// roll the variables forward through op re-execution — under the
    /// same crash schedule the Default shape draws.
    AdaptiveOps,
}

impl WorkloadShape {
    pub const ALL: [WorkloadShape; 6] = [
        WorkloadShape::Default,
        WorkloadShape::SharedHeavy,
        WorkloadShape::SessionChurn,
        WorkloadShape::DeepChain,
        WorkloadShape::StripedChurn,
        WorkloadShape::AdaptiveOps,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadShape::Default => "default",
            WorkloadShape::SharedHeavy => "shared-heavy",
            WorkloadShape::SessionChurn => "session-churn",
            WorkloadShape::DeepChain => "deep-chain",
            WorkloadShape::StripedChurn => "striped-churn",
            WorkloadShape::AdaptiveOps => "adaptive-ops",
        }
    }

    /// Parse a shape name as printed by [`Self::name`] — used by the
    /// `torture` binary's `--shape`.
    pub fn parse(name: &str) -> Option<WorkloadShape> {
        WorkloadShape::ALL
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
    }
}

/// Tuning of one torture run.
#[derive(Debug, Clone)]
pub struct TortureOptions {
    /// The seed every schedule decision derives from.
    pub seed: u64,
    pub config: SystemConfig,
    /// Traffic shape; part of the schedule's identity (a seed reproduces
    /// a run only together with its shape).
    pub shape: WorkloadShape,
    /// Requests each client issues (sequentially, on one session).
    pub requests_per_client: u64,
    /// Crash events the controller walks (log-based configs only).
    pub crash_events: usize,
    /// Run with the pre-pipeline blocking durability path instead of the
    /// asynchronous reply-release stage (log-based configs only).
    pub blocking_durability: bool,
    /// Wall-clock bound on the whole storm; blowing it panics with the
    /// seed rather than hanging CI forever.
    pub settle_timeout: Duration,
}

impl TortureOptions {
    pub fn new(seed: u64, config: SystemConfig) -> TortureOptions {
        TortureOptions {
            seed,
            config,
            shape: WorkloadShape::Default,
            requests_per_client: 10,
            crash_events: 3,
            blocking_durability: false,
            settle_timeout: Duration::from_secs(120),
        }
    }
}

/// One crash in a schedule: kill `target` when `point`'s countdown of
/// `countdown` traversals expires, and optionally crash the *restart*
/// too, at `during_recovery`'s point/countdown — the §4.5 case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// `true` = MSP2, `false` = MSP1.
    pub target_msp2: bool,
    pub point: CrashPoint,
    pub countdown: u64,
    pub during_recovery: Option<(CrashPoint, u64)>,
}

impl CrashEvent {
    fn target_name(&self) -> &'static str {
        if self.target_msp2 {
            "MSP2"
        } else {
            "MSP1"
        }
    }
}

/// Everything a seed decides, materialized up front so the run itself
/// contains no sampling (and the schedule can be printed/compared).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    pub seed: u64,
    pub shape: WorkloadShape,
    /// 8..=32 concurrent clients.
    pub clients: u64,
    /// Per client: `Some((drop_prob, dup_prob))` for a lossy link.
    pub link_faults: Vec<Option<(f64, f64)>>,
    /// Per client, per request: `m` (1..=4; 3..=4 under
    /// [`WorkloadShape::SharedHeavy`]).
    pub ms: Vec<Vec<u8>>,
    /// Per client, per request: end the session *after* this request and
    /// continue on a fresh one. All-false except under
    /// [`WorkloadShape::SessionChurn`] and [`WorkloadShape::StripedChurn`].
    pub churn_after: Vec<Vec<bool>>,
    /// Crash events, in controller order; empty on non-log configs.
    pub events: Vec<CrashEvent>,
}

/// Plan-A crash sites: points hot during *live* execution. `ReplayStep`
/// is reserved for the during-recovery follow-ups — it only fires while
/// a session is actually replaying.
const LIVE_POINTS: [CrashPoint; 3] = [
    CrashPoint::MidAppend,
    CrashPoint::PreFlush,
    CrashPoint::CheckpointWrite,
];

/// Points a during-recovery follow-up can hit: the startup flush, the
/// recovery checkpoint, and the replay loop itself.
const RECOVERY_POINTS: [CrashPoint; 3] = [
    CrashPoint::ReplayStep,
    CrashPoint::PreFlush,
    CrashPoint::CheckpointWrite,
];

impl Schedule {
    /// Derive the full schedule for `opts.seed`. The sampling order is
    /// part of the reproducibility contract — append new decisions at
    /// the end, never in the middle.
    pub fn generate(opts: &TortureOptions) -> Schedule {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let clients = rng.random_range(8..33);
        let mut link_faults = Vec::with_capacity(clients as usize);
        let mut ms = Vec::with_capacity(clients as usize);
        for _ in 0..clients {
            let lossy = rng.random_bool(0.4);
            // Sample both probabilities unconditionally so the stream of
            // draws (and hence everything after) does not depend on the
            // branch.
            let drop_prob = rng.random_range(0..120) as f64 / 1000.0;
            let dup_prob = rng.random_range(0..120) as f64 / 1000.0;
            link_faults.push(lossy.then_some((drop_prob, dup_prob)));
            // The shape is an *input*, not a draw, so branching on it
            // keeps each (seed, shape) pair deterministic — and the
            // Default stream is bit-identical to the pre-shape rig.
            ms.push(
                (0..opts.requests_per_client)
                    .map(|_| match opts.shape {
                        WorkloadShape::SharedHeavy => 3 + rng.random_range(0..2) as u8,
                        WorkloadShape::DeepChain => {
                            // Fixed m = 4; still consume one draw so the
                            // crash-event stream matches Default's.
                            let _ = rng.random_range(0..4);
                            4
                        }
                        _ => 1 + rng.random_range(0..4) as u8,
                    })
                    .collect(),
            );
        }
        let mut events = Vec::new();
        if opts.config.is_log_based() {
            for e in 0..opts.crash_events {
                let target_msp2 = rng.random_bool(0.6);
                let point = LIVE_POINTS[rng.random_range(0..3) as usize];
                let countdown = 1 + rng.random_range(0..40);
                // The first event always crashes the recovery itself (the
                // acceptance bar: at least one crash-during-recovery
                // schedule per run), biased to the replay loop; later
                // events follow up with probability 0.4.
                let follow = e == 0 || rng.random_bool(0.4);
                let fpoint = if e == 0 {
                    CrashPoint::ReplayStep
                } else {
                    RECOVERY_POINTS[rng.random_range(0..3) as usize]
                };
                let fcount = 1 + rng.random_range(0..6);
                events.push(CrashEvent {
                    target_msp2,
                    point,
                    countdown,
                    during_recovery: follow.then_some((fpoint, fcount)),
                });
            }
        }
        // Appended after everything else (the reproducibility contract):
        // session-churn points, drawn only under the churn shapes.
        let churn_after: Vec<Vec<bool>> = if matches!(
            opts.shape,
            WorkloadShape::SessionChurn | WorkloadShape::StripedChurn
        ) {
            (0..clients)
                .map(|_| {
                    (0..opts.requests_per_client)
                        .map(|_| rng.random_bool(0.25))
                        .collect()
                })
                .collect()
        } else {
            vec![vec![false; opts.requests_per_client as usize]; clients as usize]
        };
        // Appended after the churn draws (same append-only contract):
        // under DeepChain, retarget ~half the crash events onto the PR-6
        // sites — but only where they are actually hot, or the armed
        // plan would never fire: pipelined sends gate on MSP1 across the
        // pessimistic boundary; flush serving runs on MSP2 for
        // LoOptimistic reply gates.
        if opts.shape == WorkloadShape::DeepChain {
            for ev in &mut events {
                if !rng.random_bool(0.5) {
                    continue;
                }
                match opts.config {
                    // (a --blocking storm never walks the pipelined-send
                    // path, so the site would never fire there)
                    SystemConfig::Pessimistic if !ev.target_msp2 && !opts.blocking_durability => {
                        ev.point = CrashPoint::SendGateIssue;
                    }
                    SystemConfig::LoOptimistic if ev.target_msp2 => {
                        ev.point = CrashPoint::FlushServe;
                    }
                    _ => {}
                }
            }
        }
        Schedule {
            seed: opts.seed,
            shape: opts.shape,
            clients,
            link_faults,
            ms,
            churn_after,
            events,
        }
    }

    /// Total requests the storm issues.
    pub fn total_requests(&self) -> u64 {
        self.ms.iter().map(|v| v.len() as u64).sum()
    }

    /// Total `ServiceMethod2` calls (Σ m).
    pub fn total_msp2_calls(&self) -> u64 {
        self.ms
            .iter()
            .map(|v| v.iter().map(|&m| m as u64).sum::<u64>())
            .sum()
    }
}

/// Structural summary of one post-mortem log audit.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogAudit {
    pub records: u64,
    pub eos_records: u64,
    pub recovery_completes: u64,
    /// One past the last byte of the last intact frame (the end of the
    /// durable record stream; trailing zero-padding comes after).
    pub scan_end: u64,
    pub disk_len: u64,
    /// The persisted reclaim floor (merged gsn floor on a striped log):
    /// every byte of the record area below it was verified zero *before*
    /// the audit re-opened the log (the open itself re-issues the device
    /// reclaim, so checking after would be vacuous).
    pub reclaim_floor: u64,
}

/// What one run did; returned on success so callers (the bin, CI) can
/// report coverage.
#[derive(Debug, Clone)]
pub struct TortureReport {
    pub seed: u64,
    pub config: SystemConfig,
    pub shape: WorkloadShape,
    pub clients: u64,
    pub requests: u64,
    pub msp2_calls: u64,
    /// Total MSP kills (including restart attempts that failed because a
    /// fault fired during startup recovery).
    pub crashes: u64,
    /// Crash points that actually fired, in order, with their target.
    pub fired: Vec<(&'static str, CrashPoint)>,
    /// Crashes that hit a *prior recovery* (the §4.5 dimension).
    pub recovery_crashes: u64,
    /// Scheduled during-recovery follow-ups (≥1 on log-based configs).
    pub scheduled_recovery_events: u64,
    /// Events skipped because the storm's traffic ended first.
    pub skipped_events: u64,
    /// Device truncations across both MSPs (per-stripe ops on striped
    /// worlds), summed from the final incarnations' log stats.
    pub truncations: u64,
    /// Log bytes recycled across both MSPs.
    pub bytes_reclaimed: u64,
    /// Byte-growth-triggered checkpoints across both MSPs (timer-driven
    /// ones are not counted here).
    pub checkpoints_scheduled: u64,
    /// Process-level recovery buffer-pool counters summed over both MSPs'
    /// final incarnations (retired pool runs of that incarnation
    /// included; earlier incarnations' counters die with their rebuild,
    /// like the truncation numbers above).
    pub pool: msp_wal::PoolStatsSnapshot,
    /// Post-mortem audits (MSP1 then MSP2) on log-based configs.
    pub audits: Vec<LogAudit>,
}

impl std::fmt::Display for TortureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={:<4} config={:<12} shape={:<13} clients={:<2} requests={:<4} m2_calls={:<4} \
             crashes={} (during-recovery {}) fired=[{}] audit=[{}]",
            self.seed,
            self.config.name(),
            self.shape.name(),
            self.clients,
            self.requests,
            self.msp2_calls,
            self.crashes,
            self.recovery_crashes,
            self.fired
                .iter()
                .map(|(who, p)| format!("{who}:{}", p.name()))
                .collect::<Vec<_>>()
                .join(" "),
            self.audits
                .iter()
                .map(|a| format!(
                    "{}rec/{}eos/{}rc/floor{}",
                    a.records, a.eos_records, a.recovery_completes, a.reclaim_floor
                ))
                .collect::<Vec<_>>()
                .join(" "),
        )?;
        if self.truncations > 0 {
            write!(
                f,
                " trunc={} reclaimed={}B byte_ckpts={}",
                self.truncations, self.bytes_reclaimed, self.checkpoints_scheduled
            )?;
        }
        if self.pool.pool_hits + self.pool.pool_misses > 0 {
            write!(
                f,
                " pool={}h/{}m/{}ev/{}pf",
                self.pool.pool_hits,
                self.pool.pool_misses,
                self.pool.pool_evictions,
                self.pool.pool_prefetch_hits
            )?;
        }
        Ok(())
    }
}

/// How long the controller waits for an armed plan to fire before giving
/// up on the event (traffic may have drained first).
const FIRE_WAIT: Duration = Duration::from_secs(5);
/// How long a during-recovery follow-up gets to hit the restart.
const RECOVERY_FIRE_WAIT: Duration = Duration::from_secs(5);
/// Recovery-drain bound after the storm.
const DRAIN_WAIT: Duration = Duration::from_secs(30);

fn le_counter(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte counter"))
}

/// Run one torture storm. `Err` carries a message that always embeds the
/// reproducing seed and configuration.
pub fn run_torture(opts: &TortureOptions) -> Result<TortureReport, String> {
    let sched = Schedule::generate(opts);
    let tag = format!(
        "torture seed={} config={} shape={}",
        opts.seed,
        opts.config.name(),
        opts.shape.name()
    );

    let world = World::start(WorldOptions {
        config: opts.config,
        time_scale: 0.0,
        // Small threshold so session checkpoints (and hence the
        // CheckpointWrite site) are hot even in a short storm.
        session_ckpt_threshold: 4096,
        checkpoints_enabled: true,
        flush_mode: FlushMode::PerRequest,
        workers: 4,
        seed: opts.seed,
        crash_every: 0,
        durability_watermarks: true,
        blocking_durability: opts.blocking_durability,
        // `blocking_durability` already implies blocking sends via
        // `sends_block()`; otherwise the storm runs the pipelined path.
        blocking_send_durability: false,
        db_txn_overhead: Duration::ZERO,
        // The striped shape runs the scale-out configuration: WAL over
        // two stripes, runtime over two shards.
        log_stripes: if opts.shape == WorkloadShape::StripedChurn {
            2
        } else {
            0
        },
        runtime_shards: if opts.shape == WorkloadShape::StripedChurn {
            2
        } else {
            1
        },
        // The storm's checkpoints stay timer-driven; byte-driven
        // truncation pressure is the long-run tier's job
        // ([`run_torture_long_run`]).
        checkpoint_interval_bytes: 0,
        // The adaptive shape is the only schedule knob outside
        // `Schedule::generate`: same draws as Default, different log diet.
        adaptive_logging: opts.shape == WorkloadShape::AdaptiveOps,
        replacement_policy: msp_wal::ReplacementPolicy::default(),
        overlapped_recovery: true,
        recovery_prefetch: true,
    });

    let (res_tx, res_rx) = crossbeam_channel::unbounded::<Result<u64, String>>();
    let done = AtomicU64::new(0);
    let mut fired: Vec<(&'static str, CrashPoint)> = Vec::new();
    let mut recovery_crashes = 0u64;
    let mut skipped_events = 0u64;
    let mut results: Vec<Result<u64, String>> = Vec::with_capacity(sched.clients as usize);

    std::thread::scope(|s| {
        // ---- clients ------------------------------------------------ //
        for c in 0..sched.clients {
            let ms = sched.ms[c as usize].clone();
            let churn = sched.churn_after[c as usize].clone();
            let fault = sched.link_faults[c as usize];
            let tx = res_tx.clone();
            let (world, done, tag) = (&world, &done, &tag);
            s.spawn(move || {
                let id = 10_000 + c;
                let mut client = match fault {
                    Some((dp, pp)) => world.faulty_client(id, dp, pp),
                    None => world.client(id),
                };
                let mut calls = 0u64;
                // The session counter `k` is per-session state, so the
                // ledger expectation resets at every churn point.
                let mut expect = 0u64;
                let mut verdict = Ok(());
                for (i, &m) in ms.iter().enumerate() {
                    match client.call(MSP1, "ServiceMethod1", &request_payload(m)) {
                        Ok(reply) => {
                            expect += 1;
                            let k = reply_counter(&reply);
                            if k != expect {
                                verdict = Err(format!(
                                    "{tag}: client {c} request {} saw session counter {k}, \
                                     want {expect} (lost or duplicated execution)",
                                    i + 1,
                                ));
                                break;
                            }
                            calls += m as u64;
                        }
                        Err(e) => {
                            verdict =
                                Err(format!("{tag}: client {c} request {} failed: {e}", i + 1));
                            break;
                        }
                    }
                    if churn[i] {
                        if let Err(e) = client.end_session(MSP1) {
                            verdict = Err(format!(
                                "{tag}: client {c} end_session after request {} failed: {e}",
                                i + 1
                            ));
                            break;
                        }
                        expect = 0;
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(verdict.map(|()| calls));
            });
        }
        drop(res_tx);

        // ---- crash controller --------------------------------------- //
        let trace = std::env::var_os("TORTURE_TRACE").is_some();
        for ev in &sched.events {
            if trace {
                eprintln!(
                    "[trace] event {:?} done={}/{}",
                    ev,
                    done.load(Ordering::SeqCst),
                    sched.clients
                );
            }
            if done.load(Ordering::SeqCst) == sched.clients {
                skipped_events += 1;
                continue;
            }
            let slot = if ev.target_msp2 {
                &world.msp2
            } else {
                &world.msp1
            };
            let plan = Arc::new(FaultPlan::new());
            plan.arm(ev.point, ev.countdown);
            let (ftx, frx) = crossbeam_channel::bounded(1);
            plan.set_notify(ftx);
            slot.set_fault_plan(Some(Arc::clone(&plan)));

            let deadline = Instant::now() + FIRE_WAIT;
            let fired_point = loop {
                match frx.recv_timeout(Duration::from_millis(20)) {
                    Ok(pt) => break Some(pt),
                    Err(_) => {
                        if done.load(Ordering::SeqCst) == sched.clients
                            || Instant::now() >= deadline
                        {
                            // Disarm, then re-check: a fire can race the
                            // decision to give up.
                            plan.disarm_all();
                            break plan.fired();
                        }
                    }
                }
            };
            let Some(pt) = fired_point else {
                slot.set_fault_plan(None);
                skipped_events += 1;
                continue;
            };
            fired.push((ev.target_name(), pt));
            if trace {
                eprintln!("[trace] fired {} {:?}", ev.target_name(), pt);
            }

            // Kill first, then arm the follow-up: with the handle gone the
            // plan is only stored for the rebuild, so it cannot fire on
            // the dead log's stragglers — its first chance is the restart,
            // i.e. genuinely *during recovery*.
            slot.kill();
            let follow = ev.during_recovery.map(|(fpoint, fcount)| {
                let pb = Arc::new(FaultPlan::new());
                pb.arm(fpoint, fcount);
                let (btx, brx) = crossbeam_channel::bounded(1);
                pb.set_notify(btx);
                slot.set_fault_plan(Some(Arc::clone(&pb)));
                (pb, brx)
            });
            if follow.is_none() {
                slot.set_fault_plan(None);
            }
            let _ = slot.restart();
            if trace {
                eprintln!("[trace] restarted {}", ev.target_name());
            }
            if let Some((pb, brx)) = follow {
                // The follow-up may already have fired inside restart()'s
                // internal retry (startup recovery) or fire now, in the
                // replay pool; either way the slot needs one more cycle.
                let got = brx.recv_timeout(RECOVERY_FIRE_WAIT).ok().or_else(|| {
                    pb.disarm_all();
                    pb.fired()
                });
                slot.set_fault_plan(None);
                if let Some(pt2) = got {
                    recovery_crashes += 1;
                    fired.push((ev.target_name(), pt2));
                    if trace {
                        eprintln!("[trace] recovery-crash {} {:?}", ev.target_name(), pt2);
                    }
                    slot.kill();
                    let _ = slot.restart();
                    if trace {
                        eprintln!("[trace] re-restarted {}", ev.target_name());
                    }
                }
            }
        }

        // ---- settle ------------------------------------------------- //
        // Both MSPs are up (every event path ends in a restart); collect
        // the client verdicts under the storm deadline. One rescue pass
        // restarts the slots before declaring the run wedged.
        let mut deadline = Instant::now() + opts.settle_timeout;
        let mut rescued = false;
        while results.len() < sched.clients as usize {
            match res_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(r) => results.push(r),
                Err(_) => {
                    if trace {
                        eprintln!(
                            "[trace] settle: {} results, done={}/{}",
                            results.len(),
                            done.load(Ordering::SeqCst),
                            sched.clients
                        );
                        for (who, slot) in [("MSP1", &world.msp1), ("MSP2", &world.msp2)] {
                            if let Some(st) = slot.stats() {
                                eprintln!(
                                    "[trace]   {who} req={} replayed={} busy={} dup={} \
                                     orphan_drop={} orphan_rec={} rec_complete={}",
                                    st.requests,
                                    st.replayed_requests,
                                    st.busy_replies,
                                    st.duplicate_requests,
                                    st.orphan_msgs_dropped,
                                    st.orphan_recoveries,
                                    slot.recovery_complete(),
                                );
                            }
                        }
                    }
                    if Instant::now() < deadline {
                        continue;
                    }
                    if !rescued {
                        rescued = true;
                        for slot in [&world.msp1, &world.msp2] {
                            slot.set_fault_plan(None);
                            if !slot.is_up() {
                                let _ = slot.restart();
                            }
                        }
                        deadline = Instant::now() + Duration::from_secs(30);
                    } else {
                        // Panic (not Err): client threads are wedged, so
                        // the scope cannot join — surface the seed now.
                        panic!(
                            "{tag}: storm did not settle: {}/{} clients finished \
                             within {:?}",
                            results.len(),
                            sched.clients,
                            opts.settle_timeout
                        );
                    }
                }
            }
        }
    });

    // First client-level violation wins (it is the precise one).
    let mut msp2_calls = 0u64;
    for r in results {
        msp2_calls += r?;
    }
    if msp2_calls != sched.total_msp2_calls() {
        return Err(format!(
            "{tag}: clients acked {} ServiceMethod2 calls, schedule says {}",
            msp2_calls,
            sched.total_msp2_calls()
        ));
    }

    // Drain any recovery still in flight, then check the shared-state
    // model: exactly-once means the counters equal the totals.
    for (who, slot) in [("MSP1", &world.msp1), ("MSP2", &world.msp2)] {
        let t0 = Instant::now();
        while !slot.recovery_complete() {
            if t0.elapsed() > DRAIN_WAIT {
                return Err(format!(
                    "{tag}: {who} recovery did not drain within {DRAIN_WAIT:?}"
                ));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Release-stage drain: once the storm settled, both gate gauges must
    // be zero on every shape — a nonzero gauge is a leaked parked
    // envelope (a reply or an outgoing send that neither left nor was
    // discarded).
    if opts.config.is_log_based() {
        for (who, slot) in [("MSP1", &world.msp1), ("MSP2", &world.msp2)] {
            let t0 = Instant::now();
            loop {
                let Some(st) = slot.stats() else {
                    return Err(format!("{tag}: {who} down at release-drain check"));
                };
                if st.gates_pending == 0 && st.send_gates_pending == 0 {
                    break;
                }
                if t0.elapsed() > DRAIN_WAIT {
                    return Err(format!(
                        "{tag}: {who} release stage did not drain: \
                         gates_pending={} send_gates_pending={}",
                        st.gates_pending, st.send_gates_pending
                    ));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    let requests = sched.total_requests();
    let expect = [
        ("MSP1", &world.msp1, ["SV0", "SV1"], requests),
        (
            "MSP2",
            &world.msp2,
            ["SV2", "SV3"],
            sched.total_msp2_calls(),
        ),
    ];
    for (who, slot, vars, want) in expect {
        let shared = slot.dump_shared();
        if shared.len() != 2 {
            return Err(format!(
                "{tag}: {who} dump_shared returned {} vars, want 2",
                shared.len()
            ));
        }
        for (vi, (name, value)) in vars.iter().zip(&shared).enumerate() {
            let got = le_counter(value);
            if got != want {
                if std::env::var_os("TORTURE_TRACE").is_some() {
                    dump_var_history(&slot.disks(), who, vi as u32);
                }
                return Err(format!(
                    "{tag}: {who} {name} counter is {got}, want {want} \
                     (exactly-once violated on shared state)"
                ));
            }
        }
    }

    // Truncation counters come from the final incarnations' stats, so
    // they must be read before the shutdown drops the handles. (They
    // undercount across crashes — each rebuild starts fresh counters —
    // but the storm only asserts on the audits; the numbers are for the
    // report.)
    let mut truncations = 0u64;
    let mut bytes_reclaimed = 0u64;
    let mut checkpoints_scheduled = 0u64;
    let mut pool = msp_wal::PoolStatsSnapshot::default();
    if opts.config.is_log_based() {
        for slot in [&world.msp1, &world.msp2] {
            if let Some(ls) = slot.log_stats() {
                truncations += ls.log_truncations;
                bytes_reclaimed += ls.bytes_reclaimed;
            }
            if let Some(st) = slot.stats() {
                checkpoints_scheduled += st.checkpoints_scheduled;
            }
            pool = pool.merge(&slot.pool_stats());
        }
        if std::env::var_os("TORTURE_TRACE").is_some() {
            for (who, slot) in [("MSP1", &world.msp1), ("MSP2", &world.msp2)] {
                eprintln!(
                    "[trace] {who} trunc={:?} floor={:?} footprint={}",
                    slot.log_stats().map(|ls| (
                        ls.log_truncations,
                        ls.bytes_reclaimed,
                        ls.reclaim_floor_lsn
                    )),
                    slot.reclaim_floor(),
                    slot.footprint(),
                );
                let ps = slot.pool_stats();
                eprintln!(
                    "[trace] {who} pool hits={} misses={} evictions={} \
                     prefetch_hits={} prefetched_blocks={}",
                    ps.pool_hits,
                    ps.pool_misses,
                    ps.pool_evictions,
                    ps.pool_prefetch_hits,
                    ps.pool_prefetched_blocks,
                );
            }
        }
    }

    // Post-mortem: shut the world down cleanly, then re-open the final
    // disks and audit the log structure.
    let disks = opts
        .config
        .is_log_based()
        .then(|| [("MSP1", world.msp1.disks()), ("MSP2", world.msp2.disks())]);
    // `world.crash_count()` reads the slot counters, which restart() resets
    // when it rebuilds a slot; `fired` is the authoritative tally.
    let crashes = fired.len() as u64;
    world.shutdown();
    let mut audits = Vec::new();
    if let Some(disks) = disks {
        for (who, stripe_disks) in disks {
            let wtag = format!("{tag}: {who}");
            audits.push(if stripe_disks.len() == 1 {
                audit_log(&stripe_disks[0], &wtag)?
            } else {
                audit_striped_log(&stripe_disks, &wtag)?
            });
        }
    }

    Ok(TortureReport {
        seed: opts.seed,
        config: opts.config,
        shape: opts.shape,
        clients: sched.clients,
        requests,
        msp2_calls,
        crashes,
        fired,
        recovery_crashes,
        scheduled_recovery_events: sched
            .events
            .iter()
            .filter(|e| e.during_recovery.is_some())
            .count() as u64,
        skipped_events,
        truncations,
        bytes_reclaimed,
        checkpoints_scheduled,
        pool,
        audits,
    })
}

/// Tuning of one long-run bounded-log session ([`run_torture_long_run`]).
#[derive(Debug, Clone)]
pub struct LongRunOptions {
    pub seed: u64,
    pub config: SystemConfig,
    /// Run the scale-out shape: WAL striped over two disks, runtime
    /// sharded two ways (the merged-gsn truncation path).
    pub striped: bool,
    /// Concurrent clients. Each issues requests continuously until the
    /// crash sequence has finished *and* it has issued at least
    /// `min_requests_per_client`.
    pub clients: u64,
    pub min_requests_per_client: u64,
    /// Fixed-cadence MSP1 kills the controller performs.
    pub crashes: u32,
    /// Traffic time between kills.
    pub crash_interval: Duration,
    /// Per-MSP on-disk footprint bound ([`crate::world::MspSlot::footprint`],
    /// sampled continuously); `0` disables the check.
    pub footprint_cap: u64,
    /// Byte-growth checkpoint trigger handed to the world — the knob the
    /// run exists to exercise.
    pub checkpoint_interval_bytes: u64,
    pub settle_timeout: Duration,
}

impl LongRunOptions {
    pub fn new(seed: u64, config: SystemConfig) -> LongRunOptions {
        LongRunOptions {
            seed,
            config,
            striped: false,
            clients: 6,
            min_requests_per_client: 100,
            crashes: 8,
            crash_interval: Duration::from_millis(200),
            footprint_cap: 4 << 20,
            checkpoint_interval_bytes: 256 << 10,
            settle_timeout: Duration::from_secs(240),
        }
    }
}

/// What one long-run session measured.
#[derive(Debug, Clone)]
pub struct LongRunReport {
    pub seed: u64,
    pub config: SystemConfig,
    pub striped: bool,
    pub clients: u64,
    /// Requests acked across all clients (the run length).
    pub requests: u64,
    pub msp2_calls: u64,
    /// Kills performed (== `opts.crashes` on success).
    pub crashes: u64,
    /// Per-crash repair time: kill → restart returns → `recovery_complete`.
    pub mttr: Vec<Duration>,
    /// Highest per-MSP footprint any sample saw.
    pub peak_footprint: u64,
    pub footprint_cap: u64,
    pub truncations: u64,
    pub bytes_reclaimed: u64,
    pub checkpoints_scheduled: u64,
    /// Floor-aware post-mortem audits (MSP1 then MSP2).
    pub audits: Vec<LogAudit>,
}

impl LongRunReport {
    /// Mean repair time of the first and last MTTR quartile, each sample
    /// clamped to 25 ms so scheduler noise on near-instant recoveries
    /// cannot fake (or mask) a trend. `None` below 4 samples.
    pub fn mttr_quartile_means(&self) -> Option<(f64, f64)> {
        if self.mttr.len() < 4 {
            return None;
        }
        let clamp = |d: &Duration| d.as_secs_f64().max(0.025);
        let q = self.mttr.len() / 4;
        let first = self.mttr[..q].iter().map(clamp).sum::<f64>() / q as f64;
        let last = self.mttr[self.mttr.len() - q..]
            .iter()
            .map(clamp)
            .sum::<f64>()
            / q as f64;
        Some((first, last))
    }
}

impl std::fmt::Display for LongRunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (first, last) = self.mttr_quartile_means().unwrap_or((0.0, 0.0));
        write!(
            f,
            "seed={:<4} config={:<12} striped={} clients={} requests={:<5} m2_calls={:<5} \
             crashes={} mttr_q1={:.0}ms mttr_q4={:.0}ms peak_footprint={}B cap={}B \
             trunc={} reclaimed={}B byte_ckpts={} floors=[{}]",
            self.seed,
            self.config.name(),
            self.striped,
            self.clients,
            self.requests,
            self.msp2_calls,
            self.crashes,
            first * 1e3,
            last * 1e3,
            self.peak_footprint,
            self.footprint_cap,
            self.truncations,
            self.bytes_reclaimed,
            self.checkpoints_scheduled,
            self.audits
                .iter()
                .map(|a| a.reclaim_floor.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        )
    }
}

/// The bounded-log acceptance run: continuous traffic, a byte-driven
/// checkpoint/truncate loop, fixed-cadence MSP1 kills — and three
/// assertions the storm tier cannot make:
///
/// 1. **Fixed disk footprint** — a monitor samples each MSP's live
///    on-disk footprint throughout; the peak must stay under
///    `footprint_cap` no matter how long the run is.
/// 2. **Flat MTTR** — per-crash repair time is recorded; the mean of the
///    last quartile must stay within 1.5× the first quartile's (recovery
///    work is bounded by the checkpoint interval, not by run length).
/// 3. **Exactly-once under truncation** — the same three-layer oracle as
///    [`run_torture`], with the post-mortem audits running their
///    floor-aware variants.
pub fn run_torture_long_run(opts: &LongRunOptions) -> Result<LongRunReport, String> {
    use std::sync::atomic::AtomicBool;

    if !opts.config.is_log_based() {
        return Err(format!(
            "long-run: config {} has no log to bound",
            opts.config.name()
        ));
    }
    let tag = format!(
        "torture-long-run seed={} config={}{}",
        opts.seed,
        opts.config.name(),
        if opts.striped { " striped" } else { "" }
    );

    let world = World::start(WorldOptions {
        config: opts.config,
        time_scale: 0.0,
        session_ckpt_threshold: 4096,
        checkpoints_enabled: true,
        flush_mode: FlushMode::PerRequest,
        workers: 4,
        seed: opts.seed,
        crash_every: 0,
        durability_watermarks: true,
        blocking_durability: false,
        blocking_send_durability: false,
        db_txn_overhead: Duration::ZERO,
        log_stripes: if opts.striped { 2 } else { 0 },
        runtime_shards: if opts.striped { 2 } else { 1 },
        checkpoint_interval_bytes: opts.checkpoint_interval_bytes,
        adaptive_logging: false,
        replacement_policy: msp_wal::ReplacementPolicy::default(),
        overlapped_recovery: true,
        recovery_prefetch: true,
    });

    let trace = std::env::var_os("TORTURE_TRACE").is_some();
    let (res_tx, res_rx) = crossbeam_channel::unbounded::<Result<(u64, u64), String>>();
    let done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let peak = AtomicU64::new(0);
    let mut mttr: Vec<Duration> = Vec::with_capacity(opts.crashes as usize);
    let mut controller_err: Option<String> = None;
    let mut results: Vec<Result<(u64, u64), String>> = Vec::with_capacity(opts.clients as usize);

    std::thread::scope(|s| {
        // ---- clients: run until told to stop ------------------------ //
        for c in 0..opts.clients {
            let tx = res_tx.clone();
            let (world, done, stop, tag) = (&world, &done, &stop, &tag);
            let min_req = opts.min_requests_per_client;
            s.spawn(move || {
                let mut client = world.client(20_000 + c);
                let mut expect = 0u64;
                let mut calls = 0u64;
                let mut verdict = Ok(());
                loop {
                    if stop.load(Ordering::SeqCst) && expect >= min_req {
                        break;
                    }
                    // `m` alternates 1/2 deterministically — no RNG, so
                    // the totals are pure arithmetic over the ack counts.
                    let m = 1 + ((c + expect) % 2) as u8;
                    match client.call(MSP1, "ServiceMethod1", &request_payload(m)) {
                        Ok(reply) => {
                            expect += 1;
                            let k = reply_counter(&reply);
                            if k != expect {
                                verdict = Err(format!(
                                    "{tag}: client {c} request {expect} saw session \
                                     counter {k}, want {expect} (lost or duplicated \
                                     execution)"
                                ));
                                break;
                            }
                            calls += m as u64;
                        }
                        Err(e) => {
                            verdict = Err(format!(
                                "{tag}: client {c} request {} failed: {e}",
                                expect + 1
                            ));
                            break;
                        }
                    }
                }
                done.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(verdict.map(|()| (expect, calls)));
            });
        }
        drop(res_tx);

        // ---- footprint monitor -------------------------------------- //
        {
            let (world, done, peak) = (&world, &done, &peak);
            let clients = opts.clients;
            s.spawn(move || {
                while done.load(Ordering::SeqCst) < clients {
                    for slot in [&world.msp1, &world.msp2] {
                        peak.fetch_max(slot.footprint(), Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        // ---- fixed-cadence crash controller ------------------------- //
        for k in 0..opts.crashes {
            std::thread::sleep(opts.crash_interval);
            if trace {
                eprintln!(
                    "[trace] long-run crash {k}: MSP1 floor={:?} footprint={}",
                    world.msp1.reclaim_floor(),
                    world.msp1.footprint()
                );
            }
            world.msp1.kill();
            let t0 = Instant::now();
            let _ = world.msp1.restart();
            let deadline = Instant::now() + DRAIN_WAIT;
            while !world.msp1.recovery_complete() {
                if Instant::now() >= deadline {
                    controller_err = Some(format!(
                        "{tag}: crash {k}: MSP1 recovery did not complete \
                         within {DRAIN_WAIT:?}"
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            mttr.push(t0.elapsed());
            if trace {
                eprintln!(
                    "[trace] long-run crash {k}: repaired in {:?}",
                    mttr[k as usize]
                );
            }
            if controller_err.is_some() {
                break;
            }
        }
        stop.store(true, Ordering::SeqCst);

        // ---- settle ------------------------------------------------- //
        let deadline = Instant::now() + opts.settle_timeout;
        while results.len() < opts.clients as usize {
            match res_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(r) => results.push(r),
                Err(_) => {
                    if Instant::now() >= deadline {
                        panic!(
                            "{tag}: run did not settle: {}/{} clients finished \
                             within {:?}",
                            results.len(),
                            opts.clients,
                            opts.settle_timeout
                        );
                    }
                }
            }
        }
    });
    if let Some(e) = controller_err {
        return Err(e);
    }

    let mut requests = 0u64;
    let mut msp2_calls = 0u64;
    for r in results {
        let (reqs, calls) = r?;
        requests += reqs;
        msp2_calls += calls;
    }

    // Same drain + shared-state oracle as the storm tier.
    for (who, slot) in [("MSP1", &world.msp1), ("MSP2", &world.msp2)] {
        let t0 = Instant::now();
        while !slot.recovery_complete() {
            if t0.elapsed() > DRAIN_WAIT {
                return Err(format!(
                    "{tag}: {who} recovery did not drain within {DRAIN_WAIT:?}"
                ));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let expect = [
        ("MSP1", &world.msp1, ["SV0", "SV1"], requests),
        ("MSP2", &world.msp2, ["SV2", "SV3"], msp2_calls),
    ];
    for (who, slot, vars, want) in expect {
        let shared = slot.dump_shared();
        if shared.len() != 2 {
            return Err(format!(
                "{tag}: {who} dump_shared returned {} vars, want 2",
                shared.len()
            ));
        }
        for (vi, (name, value)) in vars.iter().zip(&shared).enumerate() {
            let got = le_counter(value);
            if got != want {
                if trace {
                    dump_var_history(&slot.disks(), who, vi as u32);
                }
                return Err(format!(
                    "{tag}: {who} {name} counter is {got}, want {want} \
                     (exactly-once violated on shared state)"
                ));
            }
        }
    }

    // Counters + final footprint sample, then the floor-aware audits.
    let mut truncations = 0u64;
    let mut bytes_reclaimed = 0u64;
    let mut checkpoints_scheduled = 0u64;
    for slot in [&world.msp1, &world.msp2] {
        peak.fetch_max(slot.footprint(), Ordering::SeqCst);
        if let Some(ls) = slot.log_stats() {
            truncations += ls.log_truncations;
            bytes_reclaimed += ls.bytes_reclaimed;
        }
        if let Some(st) = slot.stats() {
            checkpoints_scheduled += st.checkpoints_scheduled;
        }
    }
    let disks = [("MSP1", world.msp1.disks()), ("MSP2", world.msp2.disks())];
    world.shutdown();
    let mut audits = Vec::new();
    for (who, stripe_disks) in disks {
        let wtag = format!("{tag}: {who}");
        audits.push(if stripe_disks.len() == 1 {
            audit_log(&stripe_disks[0], &wtag)?
        } else {
            audit_striped_log(&stripe_disks, &wtag)?
        });
    }

    let report = LongRunReport {
        seed: opts.seed,
        config: opts.config,
        striped: opts.striped,
        clients: opts.clients,
        requests,
        msp2_calls,
        crashes: mttr.len() as u64,
        mttr,
        peak_footprint: peak.load(Ordering::SeqCst),
        footprint_cap: opts.footprint_cap,
        truncations,
        bytes_reclaimed,
        checkpoints_scheduled,
        audits: audits.clone(),
    };

    // ---- the bounded-log assertions ----------------------------------- //
    if report.truncations == 0 {
        return Err(format!(
            "{tag}: the log was never truncated — the byte-driven \
             checkpoint loop (interval {}B) did not run",
            opts.checkpoint_interval_bytes
        ));
    }
    if !audits.iter().any(|a| a.reclaim_floor > DATA_START) {
        return Err(format!(
            "{tag}: no audited log's reclaim floor advanced past \
             DATA_START despite {} truncations",
            report.truncations
        ));
    }
    if opts.footprint_cap > 0 && report.peak_footprint > opts.footprint_cap {
        return Err(format!(
            "{tag}: peak per-MSP footprint {}B exceeds the cap {}B — \
             the log is not bounded",
            report.peak_footprint, opts.footprint_cap
        ));
    }
    match report.mttr_quartile_means() {
        None => {
            return Err(format!(
                "{tag}: only {} MTTR samples (need ≥ 4 for the flatness \
                 check) — raise `crashes`",
                report.mttr.len()
            ));
        }
        Some((first, last)) => {
            if last > first * 1.5 {
                return Err(format!(
                    "{tag}: MTTR is not flat: last-quartile mean {:.1}ms > \
                     1.5 × first-quartile mean {:.1}ms — recovery work is \
                     growing with run length",
                    last * 1e3,
                    first * 1e3
                ));
            }
        }
    }

    Ok(report)
}

/// Frame layout of log.rs: magic byte + u32 length + u32 crc.
const AUDIT_FRAME_HEADER: u64 = 9;

/// The record-stream checks shared by the single-log and striped audits:
/// recovery epochs strictly increase and every EOS fences a record of its
/// own session behind it. Positions are LSNs on a single log and gsns on
/// a striped one — the invariants are identical because the gsn space
/// *is* the log address space under striping.
#[derive(Default)]
struct SemanticAudit {
    audit: LogAudit,
    session_at: std::collections::HashMap<u64, Option<msp_types::SessionId>>,
    last_epoch: Option<u32>,
    /// Reclaim floor the scan started at. An EOS may legally fence an
    /// orphan below it — the fenced record was checkpoint-covered and
    /// truncated away — so the fence-target checks only apply at or
    /// above the floor.
    floor: u64,
}

impl SemanticAudit {
    fn step(&mut self, tag: &str, pos: u64, rec: &LogRecord) -> Result<(), String> {
        match rec {
            LogRecord::RecoveryComplete {
                new_epoch,
                recovered_lsn,
            } => {
                if recovered_lsn.0 > pos {
                    return Err(format!(
                        "{tag}: RecoveryComplete at {pos} claims future \
                         recovered_lsn {}",
                        recovered_lsn.0
                    ));
                }
                if let Some(prev) = self.last_epoch {
                    if new_epoch.0 <= prev {
                        return Err(format!(
                            "{tag}: recovery epoch {} at LSN {pos} does not \
                             increase over {prev}",
                            new_epoch.0
                        ));
                    }
                }
                self.last_epoch = Some(new_epoch.0);
                self.audit.recovery_completes += 1;
            }
            LogRecord::Eos {
                session,
                orphan_lsn,
            } => {
                if orphan_lsn.0 < DATA_START || orphan_lsn.0 >= pos {
                    return Err(format!(
                        "{tag}: Eos at {pos} fences orphan_lsn {} outside \
                         [{DATA_START}, {pos})",
                        orphan_lsn.0
                    ));
                }
                if orphan_lsn.0 >= self.floor {
                    match self.session_at.get(&orphan_lsn.0) {
                        Some(Some(s)) if s == session => {}
                        Some(_) => {
                            return Err(format!(
                                "{tag}: Eos at {pos} for session {session:?} fences \
                                 a record of a different session at {}",
                                orphan_lsn.0
                            ));
                        }
                        None => {
                            return Err(format!(
                                "{tag}: Eos at {pos} fences orphan_lsn {} which \
                                 is not a record boundary",
                                orphan_lsn.0
                            ));
                        }
                    }
                }
                self.audit.eos_records += 1;
            }
            _ => {}
        }
        self.session_at.insert(pos, rec.session());
        self.audit.records += 1;
        Ok(())
    }
}

/// No frame past a hole: the append path only ever extends the
/// contiguous durable stream (plus zero sector-padding), so every byte
/// after the last intact frame must be zero. Any other byte is a dead
/// frame the scanner silently skipped over — recovery would lose it
/// without noticing.
fn sweep_zeros_past(bytes: &[u8], stream_end: u64, tag: &str) -> Result<(), String> {
    if (stream_end as usize) < bytes.len() {
        if let Some(i) = bytes[stream_end as usize..].iter().position(|&b| b != 0) {
            return Err(format!(
                "{tag}: non-zero byte {:#04x} at offset {} past the scan end \
                 {stream_end} — dead frame beyond the hole",
                bytes[stream_end as usize + i],
                stream_end as usize + i
            ));
        }
    }
    Ok(())
}

/// Truncated prefix check, shared by both audits. Must run on a
/// snapshot taken *before* the post-mortem re-open: `open_at` re-issues
/// the device reclaim below the persisted floor itself (to finish an
/// interrupted truncation), which would repair exactly the violation
/// this is looking for.
fn sweep_zeros_below_floor(bytes: &[u8], floor: u64, tag: &str) -> Result<(), String> {
    let lo = (DATA_START as usize).min(bytes.len());
    let hi = (floor as usize).min(bytes.len());
    if lo < hi {
        if let Some(i) = bytes[lo..hi].iter().position(|&b| b != 0) {
            return Err(format!(
                "{tag}: non-zero byte {:#04x} at offset {} below the reclaim \
                 floor {floor} — truncated space was not recycled",
                bytes[lo + i],
                lo + i
            ));
        }
    }
    Ok(())
}

/// Re-open a crashed-or-closed MSP disk and verify the structural log
/// invariants the recovery protocols rely on. `tag` prefixes every
/// failure (it carries the seed).
pub fn audit_log(disk: &Arc<MemDisk>, tag: &str) -> Result<LogAudit, String> {
    // Read the persisted reclaim floor and check the truncated prefix on
    // the raw bytes, before the open below can repair it.
    let floor = msp_wal::read_floor(disk.as_ref())
        .map_err(|e| format!("{tag}: reclaim-floor region unreadable: {e}"))?
        .map_or(DATA_START, |f| f.max(DATA_START));
    sweep_zeros_below_floor(&disk.snapshot(), floor, tag)?;

    let log = PhysicalLog::open_at(
        Arc::clone(disk) as Arc<dyn Disk>,
        DiskModel::zero(),
        FlushPolicy::per_request(),
        DATA_START,
    )
    .map_err(|e| format!("{tag}: post-mortem re-open failed: {e}"))?;

    let mut sem = SemanticAudit {
        floor,
        ..SemanticAudit::default()
    };
    let mut last_lsn: Option<u64> = None;
    // One past the last byte of the last intact frame — unlike the
    // scanner's final position, this does not skip over trailing
    // zero-padding, so it anchors the no-frame-past-a-hole sweep. The
    // stream now begins at the reclaim floor, not DATA_START.
    let mut stream_end = floor;
    {
        let mut scanner = log.scan_from(Lsn(DATA_START));
        for item in scanner.by_ref() {
            let (lsn, rec) = item.map_err(|e| format!("{tag}: scan failed mid-log: {e}"))?;
            if let Some(prev) = last_lsn {
                if lsn.0 <= prev {
                    return Err(format!("{tag}: non-monotone LSN {} after {prev}", lsn.0));
                }
            }
            last_lsn = Some(lsn.0);
            if let LogRecord::Striped { .. } = &rec {
                return Err(format!(
                    "{tag}: stripe envelope at {} on a single (unstriped) log",
                    lsn.0
                ));
            }
            sem.step(tag, lsn.0, &rec)?;
            stream_end = lsn.0 + AUDIT_FRAME_HEADER + rec.to_bytes().len() as u64;
        }
    }
    log.close();

    let bytes = disk.snapshot();
    let mut audit = sem.audit;
    audit.scan_end = stream_end;
    audit.disk_len = bytes.len() as u64;
    audit.reclaim_floor = floor;
    sweep_zeros_past(&bytes, stream_end, tag)?;
    Ok(audit)
}

/// Striped counterpart of [`audit_log`]: raw-scan every stripe device,
/// check the *per-stripe* physical invariants (monotone local LSNs, every
/// frame a stripe envelope, no dead frame past each stripe's stream end,
/// zeros below each stripe's local reclaim floor), then re-merge by gsn
/// and check the *logical* invariants on the merged stream — which must
/// be gap-free from the merged reclaim floor: after a clean shutdown the
/// final recovery has truncated every non-contiguous tail, and appends
/// only ever extend the merged frontier.
pub fn audit_striped_log(disks: &[Arc<MemDisk>], tag: &str) -> Result<LogAudit, String> {
    // The merged (gsn-space) floor is persisted on every stripe disk;
    // a crash mid-truncation may leave some disks behind, so the max is
    // authoritative — exactly the rule the striped open applies.
    let mut merged_floor = DATA_START;
    for (si, disk) in disks.iter().enumerate() {
        let f = msp_wal::read_merged_floor(disk.as_ref())
            .map_err(|e| format!("{tag} stripe {si}: merged-floor region unreadable: {e}"))?
            .unwrap_or(DATA_START);
        merged_floor = merged_floor.max(f);
    }
    // (gsn, framed size in the gsn address space, inner record); the
    // gsn-space framed size equals the stripe-local physical one.
    let mut merged: Vec<(u64, u64, LogRecord)> = Vec::new();
    let mut disk_len = 0u64;
    for (si, disk) in disks.iter().enumerate() {
        let stag = format!("{tag} stripe {si}");
        // Pre-open, like the single-log audit: the open re-drives any
        // interrupted truncation, so the zeros check must see raw bytes.
        let local_floor = msp_wal::read_floor(disk.as_ref())
            .map_err(|e| format!("{stag}: reclaim-floor region unreadable: {e}"))?
            .map_or(DATA_START, |f| f.max(DATA_START));
        sweep_zeros_below_floor(&disk.snapshot(), local_floor, &stag)?;
        let log = PhysicalLog::open_at(
            Arc::clone(disk) as Arc<dyn Disk>,
            DiskModel::zero(),
            FlushPolicy::per_request(),
            DATA_START,
        )
        .map_err(|e| format!("{stag}: post-mortem re-open failed: {e}"))?;
        let mut last_local: Option<u64> = None;
        let mut stream_end = local_floor;
        for item in log.scan_from(Lsn(DATA_START)) {
            let (lsn, rec) = item.map_err(|e| format!("{stag}: scan failed mid-log: {e}"))?;
            if let Some(prev) = last_local {
                if lsn.0 <= prev {
                    return Err(format!("{stag}: non-monotone LSN {} after {prev}", lsn.0));
                }
            }
            last_local = Some(lsn.0);
            let framed = AUDIT_FRAME_HEADER + rec.to_bytes().len() as u64;
            stream_end = lsn.0 + framed;
            match rec {
                // A surviving frame below the merged floor is possible
                // only in the mid-truncation window (its stripe was
                // truncated after a laggard persisted the new merged
                // floor); it is checkpoint-covered and dead, so drop it
                // from the merged contiguity check — the striped open
                // does the same.
                LogRecord::Striped { gsn, inner } if gsn.0 >= merged_floor => {
                    merged.push((gsn.0, framed, *inner))
                }
                LogRecord::Striped { .. } => {}
                other => {
                    return Err(format!(
                        "{stag}: bare {} record at {} outside a stripe envelope",
                        other.kind(),
                        lsn.0
                    ));
                }
            }
        }
        log.close();
        let bytes = disk.snapshot();
        disk_len += bytes.len() as u64;
        sweep_zeros_past(&bytes, stream_end, &stag)?;
    }

    merged.sort_by_key(|&(gsn, _, _)| gsn);
    let mut sem = SemanticAudit {
        floor: merged_floor,
        ..SemanticAudit::default()
    };
    let mut expected = merged_floor;
    for (gsn, framed, rec) in &merged {
        if *gsn != expected {
            return Err(format!(
                "{tag}: merged gsn stream broken: record at gsn {gsn}, \
                 expected {expected} (lost or duplicated stripe frame)"
            ));
        }
        sem.step(tag, *gsn, rec)?;
        expected = gsn + framed;
    }
    let mut audit = sem.audit;
    audit.scan_end = expected;
    audit.disk_len = disk_len;
    audit.reclaim_floor = merged_floor;
    Ok(audit)
}

/// `TORTURE_TRACE` diagnostic for a shared-counter oracle failure: scan
/// the MSP's disk(s) and print every record that moved the failed
/// variable, plus the session-lifecycle records needed to see *why*
/// (which request wrote each value, where recoveries and orphan skips
/// cut the stream). Striped worlds are re-merged by gsn so the history
/// reads like one log; the `s<i>` column shows each record's stripe.
fn dump_var_history(disks: &[Arc<MemDisk>], who: &str, var: u32) {
    let mut merged: Vec<(u64, usize, LogRecord)> = Vec::new();
    for (si, disk) in disks.iter().enumerate() {
        let log = match PhysicalLog::open_at(
            Arc::clone(disk) as Arc<dyn Disk>,
            DiskModel::zero(),
            FlushPolicy::per_request(),
            DATA_START,
        ) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("[trace] {who} stripe {si} var-history scan failed to open: {e}");
                return;
            }
        };
        for item in log.scan_from(Lsn(DATA_START)) {
            let Ok((lsn, rec)) = item else { break };
            match rec {
                // Striped frame: address by its gsn so stripes interleave.
                LogRecord::Striped { gsn, inner } => merged.push((gsn.0, si, *inner)),
                rec => merged.push((lsn.0, si, rec)),
            }
        }
        log.close();
    }
    merged.sort_by_key(|&(gsn, _, _)| gsn);
    eprintln!(
        "[trace] ---- {who} history of var {var} ({} stripe(s)) ----",
        disks.len()
    );
    for (lsn, si, rec) in &merged {
        match rec {
            LogRecord::SharedWrite {
                session,
                var: v,
                value,
                prev_write,
                ..
            } if v.0 == var => eprintln!(
                "[trace] {lsn:>8} s{si} SharedWrite   {session:?} value={} prev={}",
                le_counter(value),
                prev_write.0
            ),
            LogRecord::SharedCheckpoint { var: v, value } if v.0 == var => eprintln!(
                "[trace] {lsn:>8} s{si} SharedCkpt    value={}",
                le_counter(value)
            ),
            LogRecord::RequestReceive { session, seq, .. } => {
                eprintln!("[trace] {lsn:>8} s{si} RequestRecv   {session:?} {seq:?}")
            }
            LogRecord::ReplyReceive {
                session,
                outgoing,
                seq,
                ..
            } => eprintln!(
                "[trace] {lsn:>8} s{si} ReplyRecv     {session:?} out={outgoing:?} {seq:?}"
            ),
            LogRecord::OutgoingBind {
                session, outgoing, ..
            } => eprintln!("[trace] {lsn:>8} s{si} OutgoingBind  {session:?} out={outgoing:?}"),
            LogRecord::SessionCheckpoint { session, body } => eprintln!(
                "[trace] {lsn:>8} s{si} SessionCkpt   {session:?} next={:?}",
                body.next_expected
            ),
            LogRecord::MspCheckpoint(body) => eprintln!(
                "[trace] {lsn:>8} s{si} MspCheckpoint sessions={:?}",
                body.sessions
                    .iter()
                    .map(|s| s.session.0)
                    .collect::<Vec<_>>()
            ),
            LogRecord::SessionEnd { session } => {
                eprintln!("[trace] {lsn:>8} s{si} SessionEnd    {session:?}")
            }
            LogRecord::Eos {
                session,
                orphan_lsn,
            } => eprintln!(
                "[trace] {lsn:>8} s{si} Eos           {session:?} orphan_lsn={}",
                orphan_lsn.0
            ),
            LogRecord::RecoveryComplete {
                new_epoch,
                recovered_lsn,
            } => eprintln!(
                "[trace] {lsn:>8} s{si} RecoveryDone  epoch={} recovered_lsn={}",
                new_epoch.0, recovered_lsn.0
            ),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let opts = TortureOptions::new(11, SystemConfig::LoOptimistic);
        let a = Schedule::generate(&opts);
        let b = Schedule::generate(&opts);
        assert_eq!(a, b, "same seed, same schedule");
        assert!((8..=32).contains(&a.clients));
        assert!(a.ms.iter().flatten().all(|&m| (1..=4).contains(&m)));
        assert_eq!(a.events.len(), opts.crash_events);
        assert!(
            a.events[0].during_recovery.is_some(),
            "first event always crashes the recovery itself"
        );
        let c = Schedule::generate(&TortureOptions::new(12, SystemConfig::LoOptimistic));
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn shapes_bias_the_schedule_without_breaking_determinism() {
        let mut base = TortureOptions::new(11, SystemConfig::LoOptimistic);

        base.shape = WorkloadShape::SharedHeavy;
        let heavy = Schedule::generate(&base);
        assert_eq!(heavy, Schedule::generate(&base), "same (seed, shape)");
        assert!(
            heavy.ms.iter().flatten().all(|&m| (3..=4).contains(&m)),
            "shared-heavy draws m from 3..=4 only"
        );
        assert!(
            heavy.churn_after.iter().flatten().all(|&b| !b),
            "shared-heavy schedules no churn"
        );

        base.shape = WorkloadShape::SessionChurn;
        let churn = Schedule::generate(&base);
        assert_eq!(churn, Schedule::generate(&base), "same (seed, shape)");
        assert!(
            churn.churn_after.iter().flatten().any(|&b| b),
            "a 25% per-request churn rate over a whole storm must fire"
        );
        // The churn draws are appended at the *end* of the stream, so
        // everything before them is untouched by the shape.
        base.shape = WorkloadShape::Default;
        let plain = Schedule::generate(&base);
        assert_eq!(plain.ms, churn.ms, "churn shape leaves m draws alone");
        assert_eq!(plain.events, churn.events, "and crash events too");
        assert!(plain.churn_after.iter().flatten().all(|&b| !b));

        // Adaptive-ops changes the log diet, not the schedule: draw for
        // draw it is the Default stream.
        base.shape = WorkloadShape::AdaptiveOps;
        let ops = Schedule::generate(&base);
        assert_eq!(ops.ms, plain.ms, "adaptive-ops leaves m draws alone");
        assert_eq!(ops.events, plain.events, "and crash events too");
        assert!(ops.churn_after.iter().flatten().all(|&b| !b));
    }

    #[test]
    fn deep_chain_forces_m4_and_retargets_events_onto_the_new_sites() {
        let mut opts = TortureOptions::new(11, SystemConfig::Pessimistic);
        opts.shape = WorkloadShape::DeepChain;
        let deep = Schedule::generate(&opts);
        assert_eq!(deep, Schedule::generate(&opts), "same (seed, shape)");
        assert!(deep.ms.iter().flatten().all(|&m| m == 4), "m pinned to 4");
        // The retarget rewrites *points* only — targets, countdowns and
        // follow-ups are the same stream as Default's.
        opts.shape = WorkloadShape::Default;
        let plain = Schedule::generate(&opts);
        assert_eq!(deep.events.len(), plain.events.len());
        for (d, p) in deep.events.iter().zip(&plain.events) {
            assert_eq!(d.target_msp2, p.target_msp2);
            assert_eq!(d.countdown, p.countdown);
            assert_eq!(d.during_recovery, p.during_recovery);
        }
        // Over enough seeds the new sites are actually scheduled, each on
        // the configuration where it is hot.
        let mut any_send_gate = false;
        let mut any_flush_serve = false;
        for seed in 0..64 {
            let mut o = TortureOptions::new(seed, SystemConfig::Pessimistic);
            o.shape = WorkloadShape::DeepChain;
            any_send_gate |= Schedule::generate(&o)
                .events
                .iter()
                .any(|e| e.point == CrashPoint::SendGateIssue);
            let mut o = TortureOptions::new(seed, SystemConfig::LoOptimistic);
            o.shape = WorkloadShape::DeepChain;
            any_flush_serve |= Schedule::generate(&o)
                .events
                .iter()
                .any(|e| e.point == CrashPoint::FlushServe);
        }
        assert!(any_send_gate, "Pessimistic deep-chain hits SendGateIssue");
        assert!(any_flush_serve, "LoOptimistic deep-chain hits FlushServe");
    }

    #[test]
    fn baseline_configs_schedule_no_crash_events() {
        for config in [
            SystemConfig::NoLog,
            SystemConfig::Psession,
            SystemConfig::StateServer,
        ] {
            let s = Schedule::generate(&TortureOptions::new(3, config));
            assert!(s.events.is_empty(), "{}", config.name());
        }
    }

    #[test]
    fn audit_accepts_a_clean_log_and_rejects_garbage_past_the_end() {
        use msp_types::SessionId;
        let disk = Arc::new(MemDisk::new());
        let log = PhysicalLog::open(
            Arc::clone(&disk) as Arc<dyn Disk>,
            DiskModel::zero(),
            FlushPolicy::per_request(),
        )
        .unwrap();
        for i in 0..4u64 {
            log.append(&LogRecord::SessionEnd {
                session: SessionId(i),
            });
        }
        log.flush_to(log.end_lsn()).unwrap();
        log.close();
        let audit = audit_log(&disk, "unit").expect("clean log passes");
        assert_eq!(audit.records, 4);

        // A stray frame-ish byte beyond the durable stream must fail.
        let end = audit.scan_end;
        disk.write(end + 600, &[0xA5, 1, 2, 3]).unwrap();
        let err = audit_log(&disk, "unit").unwrap_err();
        assert!(err.contains("past the scan end"), "{err}");
    }
}
