//! One driver per table and figure of the paper's evaluation (§5), plus
//! the ablations called out in `DESIGN.md`.
//!
//! Each driver returns plain row structs; the `repro` binary renders them
//! as markdown. All times can be reported both at simulation scale and
//! normalized back to paper-equivalent milliseconds (divide by the time
//! scale).
//!
//! Workload-size scaling: the paper drives 20 000 end-client requests per
//! cell and crashes every 1000–2000 requests against a 1 MB session
//! checkpoint threshold (≈ 682 requests of log). The drivers keep the
//! *ratios* — crash interval ≈ 1.5 × checkpoint interval at the reference
//! point — while shrinking absolute counts so a full reproduction runs in
//! minutes; every row records the parameters it actually used.

use std::time::Duration;

use crate::metrics::Summary;
use crate::world::{FlushMode, SystemConfig, World, WorldOptions};

/// Default request count per experiment cell (paper: 20 000).
pub const DEFAULT_REQUESTS: u64 = 400;

/// A measured cell of Figure 14 (table or chart).
#[derive(Debug, Clone)]
pub struct Fig14Row {
    pub config: SystemConfig,
    /// Calls to ServiceMethod2 per request (the chart's x axis).
    pub m: u8,
    pub summary: Summary,
    pub time_scale: f64,
}

fn measure(opts: WorldOptions, requests: u64, m: u8) -> (Summary, World) {
    let world = World::start(opts);
    let mut client = world.client(1);
    // Warm-up: populate the session, JIT the paths, fill caches.
    let _ = world.run_requests(&mut client, requests.min(20), m);
    let series = world.run_requests(&mut client, requests, m);
    (series.summary(), world)
}

/// E1 — Figure 14 table: average response time of the five system
/// configurations at m = 1.
pub fn fig14_table(scale: f64, requests: u64) -> Vec<Fig14Row> {
    SystemConfig::ALL
        .iter()
        .map(|&config| {
            let opts = WorldOptions {
                time_scale: scale,
                ..WorldOptions::new(config)
            };
            let (summary, world) = measure(opts, requests, 1);
            world.shutdown();
            Fig14Row {
                config,
                m: 1,
                summary,
                time_scale: scale,
            }
        })
        .collect()
}

/// E2 — Figure 14 chart: response time versus the number of calls to
/// ServiceMethod2 inside ServiceMethod1 (m = 1..=4), all configurations.
pub fn fig14_chart(scale: f64, requests: u64) -> Vec<Fig14Row> {
    let mut rows = Vec::new();
    for &config in &SystemConfig::ALL {
        for m in 1..=4u8 {
            let opts = WorldOptions {
                time_scale: scale,
                ..WorldOptions::new(config)
            };
            let (summary, world) = measure(opts, requests, m);
            world.shutdown();
            rows.push(Fig14Row {
                config,
                m,
                summary,
                time_scale: scale,
            });
        }
    }
    rows
}

/// A measured cell of Figure 15(a) / Figure 16 chart.
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// Session checkpointing threshold in bytes; `None` = no
    /// checkpointing.
    pub threshold: Option<u64>,
    pub crash_every: u64,
    pub crashes: u64,
    pub summary: Summary,
    pub time_scale: f64,
}

/// The checkpoint-threshold sweep used by E3 and E6. The paper sweeps
/// 64 KB … 4 MB at ~1.5 KB of log per request; the same thresholds are
/// meaningful here because the workload's record sizes match §5.1.
pub const THRESHOLDS: [u64; 8] = [
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    1 << 20,
];

/// E3 — Figure 15(a): throughput versus session checkpointing threshold,
/// locally optimistic logging, no crashes. The rightmost row disables
/// checkpointing entirely (the paper's asymptote).
pub fn fig15a(scale: f64, requests: u64) -> Vec<ThresholdRow> {
    let mut rows = Vec::new();
    let cells: Vec<Option<u64>> = THRESHOLDS.iter().map(|&t| Some(t)).chain([None]).collect();
    for threshold in cells {
        let opts = WorldOptions {
            time_scale: scale,
            session_ckpt_threshold: threshold.unwrap_or(u64::MAX),
            checkpoints_enabled: threshold.is_some(),
            ..WorldOptions::new(SystemConfig::LoOptimistic)
        };
        let (summary, world) = measure(opts, requests, 1);
        world.shutdown();
        rows.push(ThresholdRow {
            threshold,
            crash_every: 0,
            crashes: 0,
            summary,
            time_scale: scale,
        });
    }
    rows
}

/// A measured cell of Figure 15(b).
#[derive(Debug, Clone)]
pub struct CrashRateRow {
    pub config: SystemConfig,
    /// Crash MSP2 every this many requests (0 = never).
    pub crash_every: u64,
    pub crashes: u64,
    pub summary: Summary,
    pub time_scale: f64,
}

/// Crash intervals mirroring the paper's 0, 1/2000, 1/1500, 1/1000
/// request rates, rescaled to keep `interval / checkpoint-interval`
/// constant against the 64 KB threshold used here (≈ 42 requests of log
/// per checkpoint, as 1 MB is to ≈ 682 in the paper).
pub const CRASH_INTERVALS: [u64; 4] = [0, 128, 96, 64];

/// The threshold used by the crash experiments: 64 KB, ≈ 42 requests per
/// checkpoint (the paper's 1 MB ≈ 682 requests, same ratio to the crash
/// intervals above).
pub const CRASH_CKPT_THRESHOLD: u64 = 64 << 10;

/// E4 — Figure 15(b): throughput versus crash rate for both logging
/// methods.
pub fn fig15b(scale: f64, requests: u64) -> Vec<CrashRateRow> {
    let mut rows = Vec::new();
    for &config in &[SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for &crash_every in &CRASH_INTERVALS {
            let opts = WorldOptions {
                time_scale: scale,
                session_ckpt_threshold: CRASH_CKPT_THRESHOLD,
                crash_every,
                ..WorldOptions::new(config)
            };
            let (summary, world) = measure(opts, requests, 1);
            let crashes = world.crash_count();
            world.shutdown();
            rows.push(CrashRateRow {
                config,
                crash_every,
                crashes,
                summary,
                time_scale: scale,
            });
        }
    }
    rows
}

/// A row of the Figure 16 table (maximum response times).
#[derive(Debug, Clone)]
pub struct MaxRtRow {
    pub label: String,
    pub summary: Summary,
    pub crashes: u64,
    pub time_scale: f64,
}

/// E5 — Figure 16 table: maximum response time under crashes / without
/// crashes / without checkpointing for both logging methods, plus the
/// three baselines.
pub fn fig16_table(scale: f64, requests: u64) -> Vec<MaxRtRow> {
    let mut rows = Vec::new();
    for &config in &[SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        // Crash column.
        let opts = WorldOptions {
            time_scale: scale,
            session_ckpt_threshold: CRASH_CKPT_THRESHOLD,
            crash_every: CRASH_INTERVALS[3],
            ..WorldOptions::new(config)
        };
        let (summary, world) = measure(opts, requests, 1);
        let crashes = world.crash_count();
        world.shutdown();
        rows.push(MaxRtRow {
            label: format!("{} / Crash", config.name()),
            summary,
            crashes,
            time_scale: scale,
        });
        // NoCrash column (checkpointing on).
        let opts = WorldOptions {
            time_scale: scale,
            session_ckpt_threshold: CRASH_CKPT_THRESHOLD,
            ..WorldOptions::new(config)
        };
        let (summary, world) = measure(opts, requests, 1);
        world.shutdown();
        rows.push(MaxRtRow {
            label: format!("{} / NoCrash", config.name()),
            summary,
            crashes: 0,
            time_scale: scale,
        });
        // NoCp column (checkpointing off).
        let opts = WorldOptions {
            time_scale: scale,
            session_ckpt_threshold: u64::MAX,
            checkpoints_enabled: false,
            ..WorldOptions::new(config)
        };
        let (summary, world) = measure(opts, requests, 1);
        world.shutdown();
        rows.push(MaxRtRow {
            label: format!("{} / NoCp", config.name()),
            summary,
            crashes: 0,
            time_scale: scale,
        });
    }
    for &config in &[
        SystemConfig::NoLog,
        SystemConfig::StateServer,
        SystemConfig::Psession,
    ] {
        let opts = WorldOptions {
            time_scale: scale,
            ..WorldOptions::new(config)
        };
        let (summary, world) = measure(opts, requests, 1);
        world.shutdown();
        rows.push(MaxRtRow {
            label: config.name().to_string(),
            summary,
            crashes: 0,
            time_scale: scale,
        });
    }
    rows
}

/// E6 — Figure 16 chart: throughput at a fixed crash rate versus the
/// checkpointing threshold (the optimum sits in the middle: frequent
/// checkpoints cost normal-execution overhead, rare ones cost replay).
pub fn fig16_chart(scale: f64, requests: u64) -> Vec<ThresholdRow> {
    let crash_every = CRASH_INTERVALS[3];
    THRESHOLDS
        .iter()
        .map(|&threshold| {
            let opts = WorldOptions {
                time_scale: scale,
                session_ckpt_threshold: threshold,
                crash_every,
                ..WorldOptions::new(SystemConfig::LoOptimistic)
            };
            let (summary, world) = measure(opts, requests, 1);
            let crashes = world.crash_count();
            world.shutdown();
            ThresholdRow {
                threshold: Some(threshold),
                crash_every,
                crashes,
                summary,
                time_scale: scale,
            }
        })
        .collect()
}

/// A measured cell of Figure 17.
#[derive(Debug, Clone)]
pub struct MultiClientRow {
    pub config: SystemConfig,
    pub mode: FlushMode,
    pub clients: u64,
    pub summary: Summary,
    pub time_scale: f64,
}

/// E7 — Figure 17: throughput and response time versus number of
/// concurrent end clients, both logging methods, with and without batch
/// flushing (8 ms timeout, §5.5).
pub fn fig17(scale: f64, requests_per_client: u64, max_clients: u64) -> Vec<MultiClientRow> {
    let mut rows = Vec::new();
    let modes = [
        FlushMode::PerRequest,
        FlushMode::Batched(Duration::from_millis(8)),
        FlushMode::GroupCommit, // extension beyond the paper
    ];
    for &config in &[SystemConfig::Pessimistic, SystemConfig::LoOptimistic] {
        for mode in modes {
            for clients in 1..=max_clients {
                let opts = WorldOptions {
                    time_scale: scale,
                    flush_mode: mode,
                    ..WorldOptions::new(config)
                };
                let world = World::start(opts);
                let series = world.run_concurrent(clients, requests_per_client, 1);
                world.shutdown();
                rows.push(MultiClientRow {
                    config,
                    mode,
                    clients,
                    summary: series.summary(),
                    time_scale: scale,
                });
            }
        }
    }
    rows
}

/// Ablation A2 — batch-flush timeout sweep at a fixed client count
/// (§5.5 picked 8 ms ≈ one log write; the sweep shows why).
pub fn ablation_batch_timeout(scale: f64, requests_per_client: u64) -> Vec<(u64, Summary)> {
    [0u64, 2, 4, 8, 16, 32]
        .iter()
        .map(|&ms| {
            let opts = WorldOptions {
                time_scale: scale,
                flush_mode: if ms > 0 {
                    FlushMode::Batched(Duration::from_millis(ms))
                } else {
                    FlushMode::PerRequest
                },
                ..WorldOptions::new(SystemConfig::Pessimistic)
            };
            let world = World::start(opts);
            let series = world.run_concurrent(4, requests_per_client, 1);
            world.shutdown();
            (ms, series.summary())
        })
        .collect()
}

/// Ablation A1 — logging overhead accounting: flushes and log bytes per
/// end-client request for both logging methods, by direct measurement of
/// the log counters (the quantitative core of §5.2's analysis).
#[derive(Debug, Clone)]
pub struct OverheadRow {
    pub config: SystemConfig,
    pub m: u8,
    pub flushes_per_request: f64,
    pub sectors_per_request: f64,
    pub padded_bytes_per_request: f64,
    pub log_bytes_per_request: f64,
}

pub fn ablation_logging_overhead(scale: f64, requests: u64) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    for &config in &[SystemConfig::LoOptimistic, SystemConfig::Pessimistic] {
        for m in [1u8, 4] {
            let opts = WorldOptions {
                time_scale: scale,
                ..WorldOptions::new(config)
            };
            let world = World::start(opts);
            let mut client = world.client(1);
            let _ = world.run_requests(&mut client, 20, m);
            let before1 = world.msp1.log_stats().expect("log-based");
            let series = world.run_requests(&mut client, requests, m);
            let after1 = world.msp1.log_stats().expect("log-based");
            let d1 = after1.since(&before1);
            let n = series.len() as f64;
            rows.push(OverheadRow {
                config,
                m,
                flushes_per_request: d1.flushes as f64 / n,
                sectors_per_request: d1.flushed_sectors as f64 / n,
                padded_bytes_per_request: d1.padded_bytes as f64 / n,
                log_bytes_per_request: d1.appended_bytes as f64 / n,
            });
            world.shutdown();
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast smoke test over the cheapest drivers (zero time scale).
    #[test]
    fn drivers_produce_rows() {
        let rows = fig14_table(0.0, 10);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert_eq!(r.summary.count, 10);
        }
        let rows = fig15a(0.0, 10);
        assert_eq!(rows.len(), THRESHOLDS.len() + 1);
        let rows = ablation_logging_overhead(0.0, 10);
        assert_eq!(rows.len(), 4);
        // Locally optimistic must need fewer flushes per request than
        // pessimistic at the same m.
        let lo = rows
            .iter()
            .find(|r| r.config == SystemConfig::LoOptimistic && r.m == 1)
            .unwrap();
        let pe = rows
            .iter()
            .find(|r| r.config == SystemConfig::Pessimistic && r.m == 1)
            .unwrap();
        assert!(
            lo.flushes_per_request < pe.flushes_per_request,
            "LoOptimistic {} !< Pessimistic {}",
            lo.flushes_per_request,
            pe.flushes_per_request
        );
    }
}
