//! Response-time series, throughput summaries and recovery-phase
//! breakdowns.

use std::time::{Duration, Instant};

use msp_core::runtime::RuntimeStatsSnapshot;

/// A series of per-request response times plus the wall-clock span that
/// produced them.
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<Duration>,
    elapsed: Duration,
}

impl Series {
    pub fn new() -> Series {
        Series::default()
    }

    pub fn push(&mut self, d: Duration) {
        self.samples.push(d);
    }

    pub fn set_elapsed(&mut self, e: Duration) {
        self.elapsed = e;
    }

    pub fn merge(&mut self, other: &Series) {
        self.samples.extend_from_slice(&other.samples);
        self.elapsed = self.elapsed.max(other.elapsed);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Condense into a [`Summary`].
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let n = sorted.len();
        let pct = |p: f64| sorted[((n - 1) as f64 * p) as usize];
        Summary {
            count: n as u64,
            avg: total / n as u32,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            p999: pct(0.999),
            max: *sorted.last().expect("non-empty"),
            throughput: if self.elapsed.is_zero() {
                0.0
            } else {
                n as f64 / self.elapsed.as_secs_f64()
            },
        }
    }
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub avg: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
    pub p999: Duration,
    pub max: Duration,
    /// Requests per wall-clock second (simulated scale).
    pub throughput: f64,
}

impl Summary {
    /// Average in (scaled) milliseconds.
    pub fn avg_ms(&self) -> f64 {
        self.avg.as_secs_f64() * 1e3
    }

    pub fn max_ms(&self) -> f64 {
        self.max.as_secs_f64() * 1e3
    }

    /// Rescale a scaled-time measurement back to paper-equivalent
    /// milliseconds (divide by the time scale).
    pub fn avg_ms_paper(&self, time_scale: f64) -> f64 {
        if time_scale <= 0.0 {
            self.avg_ms()
        } else {
            self.avg_ms() / time_scale
        }
    }

    pub fn max_ms_paper(&self, time_scale: f64) -> f64 {
        if time_scale <= 0.0 {
            self.max_ms()
        } else {
            self.max_ms() / time_scale
        }
    }

    /// Throughput normalized to paper-equivalent requests/second
    /// (multiply by the time scale: simulated seconds pass `1/scale`
    /// times faster than paper seconds).
    pub fn throughput_paper(&self, time_scale: f64) -> f64 {
        if time_scale <= 0.0 {
            self.throughput
        } else {
            self.throughput * time_scale
        }
    }
}

/// Per-stripe and per-shard counter breakdown of a running MSP — the
/// scale-out observability surface: which stripes the append/flush load
/// actually landed on, how far the merged durability watermark trailed
/// the fastest stripe, and how the shard router spread sessions over the
/// worker pools.
#[derive(Debug, Clone, Default)]
pub struct ScaleOutBreakdown {
    /// One entry per stripe (one on the single-log path), each that
    /// stripe's own physical-log counters.
    pub stripes: Vec<msp_wal::stats::LogStatsSnapshot>,
    /// Striping-level counters from the merged log (stripe_appends /
    /// stripe_flushes / merged watermark lag); zeros on the single-log
    /// path.
    pub merged: msp_wal::stats::LogStatsSnapshot,
    /// One entry per runtime shard.
    pub shards: Vec<msp_core::runtime::ShardStatsSnapshot>,
}

impl ScaleOutBreakdown {
    pub fn from_handle(h: &msp_core::MspHandle) -> ScaleOutBreakdown {
        ScaleOutBreakdown {
            stripes: h.stripe_stats().unwrap_or_default(),
            merged: h.log_stats().unwrap_or_default(),
            shards: h.shard_stats(),
        }
    }

    /// Merged-watermark lag per merged flush, in milliseconds.
    pub fn watermark_lag_ms(&self) -> f64 {
        if self.merged.flushes == 0 {
            return 0.0;
        }
        self.merged.merged_watermark_lag_nanos as f64 / 1e6 / self.merged.flushes as f64
    }

    /// Human-readable report lines, one per stripe and one per shard.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "striping: stripe_appends={} stripe_flushes={} watermark_lag={:.3} ms/flush",
            self.merged.stripe_appends,
            self.merged.stripe_flushes,
            self.watermark_lag_ms()
        ));
        for (i, s) in self.stripes.iter().enumerate() {
            out.push(format!(
                "stripe {i}: appends={} bytes={} flushes={} sectors={}",
                s.appends, s.appended_bytes, s.flushes, s.flushed_sectors
            ));
        }
        for (i, s) in self.shards.iter().enumerate() {
            out.push(format!(
                "shard {i}: requests={} releases={} worker_parks={}",
                s.requests, s.releases, s.worker_parks
            ));
        }
        out
    }
}

/// Wall-clock breakdown of one MSP crash recovery, lifted from the
/// runtime's phase counters: the analysis log scan, the recovery
/// checkpoint, and the (possibly parallel) session-replay phase. Replay
/// is the pool's makespan, so it stays zero until the last session
/// finishes replaying.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryPhases {
    pub analysis: Duration,
    pub checkpoint: Duration,
    pub replay: Duration,
}

impl RecoveryPhases {
    /// Extract the phase timings from a runtime snapshot.
    pub fn from_stats(s: &RuntimeStatsSnapshot) -> RecoveryPhases {
        RecoveryPhases {
            analysis: Duration::from_nanos(s.recovery_analysis_nanos),
            checkpoint: Duration::from_nanos(s.recovery_checkpoint_nanos),
            replay: Duration::from_nanos(s.recovery_replay_nanos),
        }
    }

    /// Sum of the three phases (excludes inter-phase glue, so it is a
    /// lower bound on MTTR).
    pub fn total(&self) -> Duration {
        self.analysis + self.checkpoint + self.replay
    }

    pub fn analysis_ms(&self) -> f64 {
        self.analysis.as_secs_f64() * 1e3
    }

    pub fn checkpoint_ms(&self) -> f64 {
        self.checkpoint.as_secs_f64() * 1e3
    }

    pub fn replay_ms(&self) -> f64 {
        self.replay.as_secs_f64() * 1e3
    }
}

/// Poll [`msp_core::MspHandle::recovery_complete`] under a deadline.
///
/// Returns the recovery phase breakdown once the pool drains; past the
/// deadline it panics with `context` (tests put the run's seed there)
/// and the phase timings accumulated so far, instead of hanging CI
/// forever on a wedged recovery.
pub fn await_recovery(
    handle: &msp_core::MspHandle,
    timeout: Duration,
    context: &str,
) -> RecoveryPhases {
    let t0 = Instant::now();
    while !handle.recovery_complete() {
        if t0.elapsed() > timeout {
            let p = RecoveryPhases::from_stats(&handle.stats());
            panic!(
                "{context}: recovery did not drain within {timeout:?} \
                 (analysis {:.3} ms, checkpoint {:.3} ms, replay {:.3} ms so far)",
                p.analysis_ms(),
                p.checkpoint_ms(),
                p.replay_ms()
            );
        }
        std::thread::sleep(Duration::from_micros(500));
    }
    RecoveryPhases::from_stats(&handle.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_series_is_zero() {
        assert_eq!(Series::new().summary(), Summary::default());
    }

    #[test]
    fn summary_statistics() {
        let mut s = Series::new();
        for ms in [1u64, 2, 3, 4, 100] {
            s.push(Duration::from_millis(ms));
        }
        s.set_elapsed(Duration::from_secs(1));
        let sum = s.summary();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.max, Duration::from_millis(100));
        assert_eq!(sum.p50, Duration::from_millis(3));
        assert_eq!(sum.throughput, 5.0);
        assert!((sum.avg_ms() - 22.0).abs() < 1e-6);
    }

    #[test]
    fn paper_normalization() {
        let mut s = Series::new();
        s.push(Duration::from_millis(2));
        s.set_elapsed(Duration::from_millis(2));
        let sum = s.summary();
        // scale 0.02: 2 scaled ms == 100 paper ms; 500 scaled req/s ==
        // 10 paper req/s.
        assert!((sum.avg_ms_paper(0.02) - 100.0).abs() < 1e-6);
        assert!((sum.throughput_paper(0.02) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_phases_from_snapshot() {
        let s = RuntimeStatsSnapshot {
            recovery_analysis_nanos: 2_000_000,
            recovery_checkpoint_nanos: 500_000,
            recovery_replay_nanos: 7_500_000,
            ..Default::default()
        };
        let p = RecoveryPhases::from_stats(&s);
        assert_eq!(p.total(), Duration::from_millis(10));
        assert!((p.analysis_ms() - 2.0).abs() < 1e-9);
        assert!((p.checkpoint_ms() - 0.5).abs() < 1e-9);
        assert!((p.replay_ms() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Series::new();
        a.push(Duration::from_millis(1));
        a.set_elapsed(Duration::from_secs(1));
        let mut b = Series::new();
        b.push(Duration::from_millis(3));
        b.set_elapsed(Duration::from_secs(2));
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, Duration::from_millis(3));
        assert_eq!(s.throughput, 1.0, "uses the longest elapsed span");
    }
}
