//! Experiment harness reproducing the paper's evaluation (§5).
//!
//! * [`workload`] — the exact Figure 13 configuration: an end client,
//!   `MSP1.ServiceMethod1` (read+write SV0, call `ServiceMethod2` *m*
//!   times, read+write SV1, write 512 B of an 8 KB session state) and
//!   `MSP2.ServiceMethod2` (read+write SV2 and SV3, write 512 B of
//!   session state); 100 B parameters and returns, 128 B shared
//!   variables.
//! * [`world`] — bootstraps one of the five system configurations
//!   (LoOptimistic / Pessimistic / NoLog / Psession / StateServer) over
//!   the simulated network and disks, under one global time scale.
//! * [`crashes`] — the §5.4 fault injector: MSP2 is instructed to kill
//!   itself right after its reply is consumed, so its buffered log
//!   records are lost and session SE1 at MSP1 becomes an orphan.
//! * [`torture`] — the seed-driven crash-storm rig: reproducible fault
//!   schedules (crash points, lossy links, multi-crashes including
//!   crash-during-recovery) with an exactly-once oracle and a
//!   post-mortem log audit.
//! * [`metrics`] — response-time series and throughput accounting.
//! * [`experiments`] — one driver per table and figure (E1–E7 in
//!   `DESIGN.md`) plus the ablations.

pub mod crashes;
pub mod experiments;
pub mod metrics;
pub mod torture;
pub mod workload;
pub mod world;

pub use metrics::{await_recovery, RecoveryPhases, Series, Summary};
pub use torture::{
    run_torture, run_torture_long_run, LongRunOptions, LongRunReport, Schedule, TortureOptions,
    TortureReport, WorkloadShape,
};
pub use world::{FlushMode, SystemConfig, World, WorldOptions};
