//! Fault injection (§5.4).
//!
//! "To generate orphans, in ServiceMethod1 with locally optimistic
//! logging, when the reply from ServiceMethod2 is received by MSP1, MSP2
//! is instructed to kill itself. This causes the buffered log records of
//! MSP2 to be lost. Thus, the distributed log flush initiated at the end
//! of ServiceMethod1 will fail, making session SE1 at MSP1 an orphan."
//!
//! The moving parts live next to the world bootstrap:
//! [`crate::workload::make_service_method1`] accepts an *after-reply
//! hook* that fires on every `crash_every`-th live call into
//! `ServiceMethod2`; [`crate::world::World::start`] wires that hook to a
//! controller thread which calls [`Msp2Slot::crash_and_restart`] —
//! killing MSP2 (un-flushed tail lost) and restarting it through full MSP
//! crash recovery, which then broadcasts its recovered state number and
//! triggers SE1's orphan recovery at MSP1.
//!
//! Beyond the paper's single scripted kill-point, the torture rig
//! ([`crate::torture`]) drives *seed-generated* schedules of crashes at
//! four injection sites inside the log/checkpoint/replay paths
//! (`msp_wal::CrashPoint`), on either MSP, including crashes landed
//! *during a previous crash's recovery* (§4.5 multi-crash). Both rigs
//! share [`MspSlot`]: a restartable MSP whose disk survives the kill.

pub use crate::world::{Msp2Slot, MspSlot};
