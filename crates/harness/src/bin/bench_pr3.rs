//! Macro-benchmark for the parallel recovery engine (PR 3).
//!
//! Builds a crash image the way §5.2's workload would leave one behind:
//! N end clients each hold a session with one log-based MSP and their
//! calls interleave round-robin, so every session's replay window spans
//! almost the whole log. Checkpoints are disabled to force full-window
//! replay. The MSP is then crashed and the disk snapshotted.
//!
//! Each measured run restores the identical image onto a fresh disk and
//! restarts the MSP under a scaled disk model, timing MTTR — wall clock
//! from the restart call until [`recovery_complete`] reports the replay
//! pool drained. The sweep covers the serial baseline
//! (`serial_recovery`: one thread, no cache, whole-window read charging)
//! against the parallel engine at recovery threads × replay-cache sizes,
//! for two session populations. Results go to `BENCH_PR3.json`, mirrored
//! on stdout.
//!
//! ```text
//! bench_pr3 [--calls N] [--scale S]
//! ```
//!
//! [`recovery_complete`]: msp_core::MspHandle::recovery_complete

use std::sync::Arc;
use std::time::{Duration, Instant};

use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_harness::metrics::RecoveryPhases;
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{Disk, DiskModel, FlushPolicy, MemDisk};

const MSP: MspId = MspId(1);

fn cluster() -> ClusterConfig {
    ClusterConfig::new().with_msp(MSP, DomainId(1))
}

fn base_cfg() -> MspConfig {
    MspConfig::new(MSP, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_logging(LoggingConfig {
            checkpoints_enabled: false,
            ..LoggingConfig::default()
        })
}

fn build_msp(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    cfg: MspConfig,
    model: DiskModel,
) -> msp_core::MspHandle {
    MspBuilder::new(cfg, cluster())
        .disk_model(model)
        .flush_policy(FlushPolicy::per_request())
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("work", |ctx, payload| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            // §5.2 flavour: overwrite a 512 B slice of session state so
            // replay has real value-log records to apply.
            ctx.set_session("state", vec![(n % 251) as u8; 512]);
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            let _ = payload;
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .expect("start MSP")
}

/// Drive `sessions` clients for `calls` rounds, round-robin so the
/// sessions interleave in the log, then crash. Returns the crash-time
/// disk image.
fn build_crash_image(sessions: u64, calls: u64) -> Vec<u8> {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 31 + sessions);
    let disk = Arc::new(MemDisk::new());
    let handle = build_msp(&net, Arc::clone(&disk), base_cfg(), DiskModel::zero());
    let mut clients: Vec<MspClient> = (0..sessions)
        .map(|i| MspClient::new(&net, 100 + i, Default::default()))
        .collect();
    let payload = vec![0x42u8; 100];
    for round in 0..calls {
        for (i, c) in clients.iter_mut().enumerate() {
            let r = c.call(MSP, "work", &payload).expect("load call");
            assert_eq!(
                u64::from_le_bytes(r[..8].try_into().unwrap()),
                round + 1,
                "session {i} out of step during load"
            );
        }
    }
    handle.crash();
    let image = disk.snapshot();
    net.shutdown();
    image
}

struct RunResult {
    mttr: Duration,
    phases: RecoveryPhases,
    pool_sessions: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    prefetch_chunks: u64,
}

impl RunResult {
    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Restore `image` onto a fresh disk and restart the MSP under `cfg`,
/// timing restart-to-recovered (MTTR).
fn run_recovery(image: &[u8], cfg: MspConfig, scale: f64) -> RunResult {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 7);
    let disk = Arc::new(MemDisk::new());
    disk.write(0, image).expect("restore crash image");
    let model = DiskModel::default().with_scale(scale);
    let t0 = Instant::now();
    let handle = build_msp(&net, Arc::clone(&disk), cfg, model);
    msp_harness::await_recovery(&handle, Duration::from_secs(120), "bench_pr3");
    let mttr = t0.elapsed();
    let stats = handle.stats();
    let log = handle.log_stats().expect("log-based MSP has log stats");
    handle.shutdown();
    net.shutdown();
    RunResult {
        mttr,
        phases: RecoveryPhases::from_stats(&stats),
        pool_sessions: stats.recovery_pool_sessions,
        cache_hits: log.replay_cache_hits,
        cache_misses: log.replay_cache_misses,
        cache_evictions: log.replay_cache_evictions,
        prefetch_chunks: log.prefetch_chunks,
    }
}

fn run_json(sessions: u64, mode: &str, threads: usize, blocks: usize, r: &RunResult) -> String {
    format!(
        concat!(
            "{{ \"sessions\": {}, \"mode\": \"{}\", \"threads\": {}, ",
            "\"cache_blocks\": {}, \"mttr_ms\": {:.3}, ",
            "\"analysis_ms\": {:.3}, \"checkpoint_ms\": {:.3}, ",
            "\"replay_ms\": {:.3}, \"pool_sessions\": {}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, ",
            "\"cache_evictions\": {}, \"hit_rate\": {:.3}, ",
            "\"prefetch_chunks\": {} }}"
        ),
        sessions,
        mode,
        threads,
        blocks,
        r.mttr.as_secs_f64() * 1e3,
        r.phases.analysis_ms(),
        r.phases.checkpoint_ms(),
        r.phases.replay_ms(),
        r.pool_sessions,
        r.cache_hits,
        r.cache_misses,
        r.cache_evictions,
        r.hit_rate(),
        r.prefetch_chunks,
    )
}

fn main() {
    let mut calls = 24u64;
    let mut scale = 0.05f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--calls" => calls = it.next().and_then(|v| v.parse().ok()).unwrap_or(calls),
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let threads_sweep = [1usize, 2, 4, 8];
    let cache_sweep = [16usize, 64];
    let mut rows: Vec<String> = Vec::new();
    let mut speedup_8t_64s = 0.0f64;
    let mut hit_rate_8t_64s = 0.0f64;

    for &sessions in &[16u64, 64] {
        let image = build_crash_image(sessions, calls);
        eprintln!(
            "crash image: {} sessions x {} calls, {} KB of log",
            sessions,
            calls,
            image.len() / 1024
        );

        let serial = run_recovery(&image, base_cfg().with_serial_recovery(true), scale);
        rows.push(run_json(sessions, "serial", 1, 0, &serial));
        eprintln!(
            "  serial: MTTR {:.1} ms (replay {:.1} ms)",
            serial.mttr.as_secs_f64() * 1e3,
            serial.phases.replay_ms()
        );

        for &threads in &threads_sweep {
            for &blocks in &cache_sweep {
                let cfg = base_cfg()
                    .with_recovery_threads(threads)
                    .with_replay_cache_blocks(blocks);
                let r = run_recovery(&image, cfg, scale);
                let speedup = serial.mttr.as_secs_f64() / r.mttr.as_secs_f64();
                eprintln!(
                    "  parallel {threads}t/{blocks}b: MTTR {:.1} ms ({speedup:.2}x, \
                     hit rate {:.2})",
                    r.mttr.as_secs_f64() * 1e3,
                    r.hit_rate()
                );
                if sessions == 64 && threads == 8 && blocks == 64 {
                    speedup_8t_64s = speedup;
                    hit_rate_8t_64s = r.hit_rate();
                }
                rows.push(run_json(sessions, "parallel", threads, blocks, &r));
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr3_parallel_recovery\",\n",
            "  \"workload\": {{ \"calls_per_session\": {}, \"disk_scale\": {}, ",
            "\"checkpoints\": false }},\n",
            "  \"runs\": [\n    {}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"speedup_8t_64s\": {:.2},\n",
            "    \"hit_rate_8t_64s\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        calls,
        scale,
        rows.join(",\n    "),
        speedup_8t_64s,
        hit_rate_8t_64s,
    );

    print!("{json}");
    std::fs::write("BENCH_PR3.json", &json).expect("write BENCH_PR3.json");

    assert!(
        speedup_8t_64s >= 3.0,
        "parallel recovery must be >=3x serial at 8 threads / 64 sessions, \
         got {speedup_8t_64s:.2}x"
    );
    assert!(
        hit_rate_8t_64s > 0.5,
        "replay cache hit rate must exceed 50%, got {hit_rate_8t_64s:.3}"
    );
    eprintln!(
        "wrote BENCH_PR3.json ({speedup_8t_64s:.2}x at 8 threads/64 sessions, \
         hit rate {hit_rate_8t_64s:.2})"
    );
}
