//! Crash-storm torture driver: sweep seeds × the five §5.2 system
//! configurations through the seed-driven fault rig and report every
//! violation with its reproducing seed.
//!
//! ```text
//! torture [--seeds N] [--seed-base B] [--config NAME]
//!         [--requests N] [--events N]
//! ```
//!
//! Each run prints one line; any oracle or post-mortem failure prints
//! the seed and the exact one-liner that replays it, and the process
//! exits non-zero. CI runs this with a fixed small seed set.

use std::process::ExitCode;
use std::time::Instant;

use msp_harness::torture::{run_torture, TortureOptions};
use msp_harness::SystemConfig;

struct Args {
    seeds: u64,
    seed_base: u64,
    config: Option<SystemConfig>,
    requests: u64,
    events: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 8,
        seed_base: 1,
        config: None,
        requests: 10,
        events: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = val().parse().expect("--seeds N"),
            "--seed-base" => args.seed_base = val().parse().expect("--seed-base N"),
            "--config" => {
                let name = val();
                args.config = Some(
                    SystemConfig::parse(&name).unwrap_or_else(|| panic!("unknown config {name}")),
                );
            }
            "--requests" => args.requests = val().parse().expect("--requests N"),
            "--events" => args.events = val().parse().expect("--events N"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let configs: Vec<SystemConfig> = match args.config {
        Some(c) => vec![c],
        None => SystemConfig::ALL.to_vec(),
    };
    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut crashes = 0u64;
    let mut recovery_crashes = 0u64;
    let mut failures: Vec<(u64, SystemConfig, String)> = Vec::new();

    for seed in args.seed_base..args.seed_base + args.seeds {
        for &config in &configs {
            let mut opts = TortureOptions::new(seed, config);
            opts.requests_per_client = args.requests;
            opts.crash_events = args.events;
            runs += 1;
            match run_torture(&opts) {
                Ok(report) => {
                    crashes += report.crashes;
                    recovery_crashes += report.recovery_crashes;
                    if config.is_log_based()
                        && args.events > 0
                        && report.scheduled_recovery_events == 0
                    {
                        failures.push((
                            seed,
                            config,
                            "schedule carried no crash-during-recovery event".into(),
                        ));
                        println!("FAIL  {report}");
                    } else {
                        println!("ok    {report}");
                    }
                }
                Err(msg) => {
                    println!("FAIL  seed={seed:<4} config={:<12} {msg}", config.name());
                    failures.push((seed, config, msg));
                }
            }
        }
    }

    println!(
        "\n{} runs in {:.1} s: {} crashes injected ({} during a prior recovery), {} failures",
        runs,
        t0.elapsed().as_secs_f64(),
        crashes,
        recovery_crashes,
        failures.len()
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (seed, config, msg) in &failures {
            eprintln!("\nFAILED seed={seed} config={}: {msg}", config.name());
            eprintln!(
                "reproduce with: cargo run --release --bin torture -- \
                 --seed-base {seed} --seeds 1 --config {} --requests {} --events {}",
                config.name(),
                args.requests,
                args.events
            );
        }
        ExitCode::FAILURE
    }
}
