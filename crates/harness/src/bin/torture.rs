//! Crash-storm torture driver: sweep seeds × the five §5.2 system
//! configurations through the seed-driven fault rig and report every
//! violation with its reproducing seed.
//!
//! ```text
//! torture [--seeds N] [--seed-base B] [--config NAME] [--shape NAME]
//!         [--requests N] [--events N] [--blocking]
//!         [--long-run] [--footprint-cap BYTES] [--crashes N] [--min-requests N]
//! ```
//!
//! Without `--shape`, each seed rotates through the workload shapes
//! (default / shared-heavy / session-churn / deep-chain / striped-churn /
//! adaptive-ops) so a sweep covers all of them — including the scale-out
//! striped+sharded configuration and the adaptive value/operation logging
//! diet — without multiplying its runtime. `--blocking` runs the storm on
//! the pre-pipeline blocking durability path.
//!
//! `--long-run` switches to the bounded-log tier: continuous traffic
//! under a byte-driven checkpoint/truncate loop with fixed-cadence MSP1
//! kills, asserting the on-disk footprint stays under `--footprint-cap`
//! and per-crash MTTR stays flat. Seeds rotate plain/striped worlds on
//! the two log-based configurations.
//!
//! Each run prints one line; any oracle or post-mortem failure prints
//! the seed and the exact one-liner that replays it, and the process
//! exits non-zero. CI runs this with a fixed small seed set.

use std::process::ExitCode;
use std::time::Instant;

use msp_harness::torture::{
    run_torture, run_torture_long_run, LongRunOptions, TortureOptions, WorkloadShape,
};
use msp_harness::SystemConfig;

struct Args {
    seeds: u64,
    seed_base: u64,
    config: Option<SystemConfig>,
    shape: Option<WorkloadShape>,
    requests: u64,
    events: usize,
    blocking: bool,
    long_run: bool,
    footprint_cap: Option<u64>,
    crashes: Option<u32>,
    min_requests: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 8,
        seed_base: 1,
        config: None,
        shape: None,
        requests: 10,
        events: 3,
        blocking: false,
        long_run: false,
        footprint_cap: None,
        crashes: None,
        min_requests: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = val().parse().expect("--seeds N"),
            "--seed-base" => args.seed_base = val().parse().expect("--seed-base N"),
            "--config" => {
                let name = val();
                args.config = Some(
                    SystemConfig::parse(&name).unwrap_or_else(|| panic!("unknown config {name}")),
                );
            }
            "--shape" => {
                let name = val();
                args.shape = Some(
                    WorkloadShape::parse(&name).unwrap_or_else(|| panic!("unknown shape {name}")),
                );
            }
            "--requests" => args.requests = val().parse().expect("--requests N"),
            "--events" => args.events = val().parse().expect("--events N"),
            "--blocking" => args.blocking = true,
            "--long-run" => args.long_run = true,
            "--footprint-cap" => {
                args.footprint_cap = Some(val().parse().expect("--footprint-cap BYTES"))
            }
            "--crashes" => args.crashes = Some(val().parse().expect("--crashes N")),
            "--min-requests" => args.min_requests = Some(val().parse().expect("--min-requests N")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The `--long-run` driver: one bounded-log session per seed, rotating
/// plain/striped worlds across the log-based configurations.
fn main_long_run(args: &Args) -> ExitCode {
    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut failures: Vec<(u64, SystemConfig, bool, String)> = Vec::new();
    for seed in args.seed_base..args.seed_base + args.seeds {
        let config = args.config.unwrap_or(if seed % 2 == 0 {
            SystemConfig::Pessimistic
        } else {
            SystemConfig::LoOptimistic
        });
        let mut opts = LongRunOptions::new(seed, config);
        opts.striped = seed % 4 >= 2;
        if let Some(cap) = args.footprint_cap {
            opts.footprint_cap = cap;
        }
        if let Some(crashes) = args.crashes {
            opts.crashes = crashes;
        }
        if let Some(min) = args.min_requests {
            opts.min_requests_per_client = min;
        }
        runs += 1;
        match run_torture_long_run(&opts) {
            Ok(report) => println!("ok    {report}"),
            Err(msg) => {
                println!("FAIL  seed={seed:<4} config={:<12} {msg}", config.name());
                failures.push((seed, config, opts.striped, msg));
            }
        }
    }
    println!(
        "\n{} long runs in {:.1} s: {} failures",
        runs,
        t0.elapsed().as_secs_f64(),
        failures.len()
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (seed, config, striped, msg) in &failures {
            eprintln!(
                "\nFAILED seed={seed} config={} striped={striped}: {msg}",
                config.name()
            );
            eprintln!(
                "reproduce with: cargo run --release --bin torture -- --long-run \
                 --seed-base {seed} --seeds 1 --config {}",
                config.name()
            );
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.long_run {
        return main_long_run(&args);
    }
    let configs: Vec<SystemConfig> = match args.config {
        Some(c) => vec![c],
        None => SystemConfig::ALL.to_vec(),
    };
    let t0 = Instant::now();
    let mut runs = 0u64;
    let mut crashes = 0u64;
    let mut recovery_crashes = 0u64;
    let mut failures: Vec<(u64, SystemConfig, WorkloadShape, String)> = Vec::new();

    for seed in args.seed_base..args.seed_base + args.seeds {
        // No pinned shape: rotate by seed so every sweep of ≥3 seeds
        // covers all shapes on all configs.
        let shape = args
            .shape
            .unwrap_or(WorkloadShape::ALL[(seed % WorkloadShape::ALL.len() as u64) as usize]);
        for &config in &configs {
            let mut opts = TortureOptions::new(seed, config);
            opts.shape = shape;
            opts.requests_per_client = args.requests;
            opts.crash_events = args.events;
            opts.blocking_durability = args.blocking;
            runs += 1;
            match run_torture(&opts) {
                Ok(report) => {
                    crashes += report.crashes;
                    recovery_crashes += report.recovery_crashes;
                    if config.is_log_based()
                        && args.events > 0
                        && report.scheduled_recovery_events == 0
                    {
                        failures.push((
                            seed,
                            config,
                            shape,
                            "schedule carried no crash-during-recovery event".into(),
                        ));
                        println!("FAIL  {report}");
                    } else {
                        println!("ok    {report}");
                    }
                }
                Err(msg) => {
                    println!("FAIL  seed={seed:<4} config={:<12} {msg}", config.name());
                    failures.push((seed, config, shape, msg));
                }
            }
        }
    }

    println!(
        "\n{} runs in {:.1} s: {} crashes injected ({} during a prior recovery), {} failures",
        runs,
        t0.elapsed().as_secs_f64(),
        crashes,
        recovery_crashes,
        failures.len()
    );
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for (seed, config, shape, msg) in &failures {
            eprintln!(
                "\nFAILED seed={seed} config={} shape={}: {msg}",
                config.name(),
                shape.name()
            );
            eprintln!(
                "reproduce with: cargo run --release --bin torture -- \
                 --seed-base {seed} --seeds 1 --config {} --shape {} --requests {} --events {}{}",
                config.name(),
                shape.name(),
                args.requests,
                args.events,
                if args.blocking { " --blocking" } else { "" }
            );
        }
        ExitCode::FAILURE
    }
}
