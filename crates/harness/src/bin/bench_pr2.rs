//! Micro-benchmark for the scalable WAL append path (PR 2).
//!
//! Drives the physical log directly with a commit-per-append workload
//! (append one record, then `flush_to` it) at 1 and 8 threads, under the
//! same scaled disk model, through two pipelines:
//!
//! * **serialized** — the legacy single-mutex append path with
//!   one-flush-per-commit (`serialized_append` + `per_request`), and
//! * **reserved** — the reservation-based append path with a short
//!   group-commit coalescing window.
//!
//! Also checks two invariants the speedup must not cost us: a fixed
//! sequential commit pattern produces identical device-flush counts on
//! both pipelines, and a crash mid-append recovers byte-identical state.
//! A final sweep maps the reserved pipeline across committer threads ×
//! record sizes × group-commit windows. Results go to `BENCH_PR2.json`,
//! mirrored on stdout.
//!
//! ```text
//! bench_pr2 [--per-thread N] [--scale S]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use msp_types::{Lsn, RequestSeq, SessionId};
use msp_wal::log::DATA_START;
use msp_wal::{DiskModel, FlushPolicy, LogRecord, MemDisk, PhysicalLog};

fn sized_rec(session: u64, seq: u64, len: usize) -> LogRecord {
    LogRecord::RequestReceive {
        session: SessionId(session),
        seq: RequestSeq(seq),
        method: "bench".into(),
        payload: vec![session as u8; len],
        sender_dv: None,
    }
}

fn rec(session: u64, seq: u64) -> LogRecord {
    sized_rec(session, seq, 120)
}

struct PassResult {
    elapsed: Duration,
    commits: u64,
    flushes: u64,
    reservations: u64,
    group_batches: u64,
}

impl PassResult {
    fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.elapsed.as_secs_f64()
    }
    fn flushes_per_commit(&self) -> f64 {
        self.flushes as f64 / self.commits as f64
    }
}

fn policy(serialized: bool) -> FlushPolicy {
    if serialized {
        FlushPolicy::per_request().with_serialized_append(true)
    } else {
        FlushPolicy::per_request().with_group_commit_window(Some(Duration::from_millis(1)))
    }
}

/// One timed pass: `threads` committers, each doing `per_thread`
/// append-then-commit cycles against a fresh log.
fn run_pass(serialized: bool, threads: u64, per_thread: u64, scale: f64) -> PassResult {
    let disk = Arc::new(MemDisk::new());
    let model = DiskModel::default().with_scale(scale);
    let log = PhysicalLog::open(disk, model, policy(serialized)).expect("open log");
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..per_thread {
                    let lsn = log.append(&rec(t, i));
                    log.flush_to(lsn).expect("flush_to");
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = log.stats();
    log.close();
    PassResult {
        elapsed,
        commits: threads * per_thread,
        flushes: stats.flushes,
        reservations: stats.append_reservations,
        group_batches: stats.group_commit_batches,
    }
}

/// One reserved-pipeline sweep point: `threads` committers of
/// `record_len`-byte payloads under an optional group-commit window
/// (the roadmap's threads × record size × window map).
fn sweep_pass(
    threads: u64,
    record_len: usize,
    window: Option<Duration>,
    per_thread: u64,
    scale: f64,
) -> PassResult {
    let disk = Arc::new(MemDisk::new());
    let model = DiskModel::default().with_scale(scale);
    let policy = FlushPolicy::per_request().with_group_commit_window(window);
    let log = PhysicalLog::open(disk, model, policy).expect("open log");
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..per_thread {
                    let lsn = log.append(&sized_rec(t, i, record_len));
                    log.flush_to(lsn).expect("flush_to");
                }
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = log.stats();
    log.close();
    PassResult {
        elapsed,
        commits: threads * per_thread,
        flushes: stats.flushes,
        reservations: stats.append_reservations,
        group_batches: stats.group_commit_batches,
    }
}

/// Device-flush parity: the same fixed sequential commit pattern must
/// issue the identical number of device flushes on both pipelines.
fn flush_parity(commits: u64) -> (u64, u64) {
    let counts: Vec<u64> = [true, false]
        .iter()
        .map(|&serialized| {
            let disk = Arc::new(MemDisk::new());
            let log = PhysicalLog::open(
                disk,
                DiskModel::zero(),
                FlushPolicy::per_request().with_serialized_append(serialized),
            )
            .expect("open log");
            for i in 0..commits {
                let lsn = log.append(&rec(7, i));
                log.flush_to(lsn).expect("flush_to");
            }
            let flushes = log.stats().flushes;
            log.close();
            flushes
        })
        .collect();
    (counts[0], counts[1])
}

/// Crash mid-append: run the same deterministic sequence on both
/// pipelines — commit a prefix, append an unflushed suffix, crash —
/// and return the two recovered `(lsn, record)` streams.
fn crash_recovery(serialized: bool) -> Vec<(u64, LogRecord)> {
    let disk = Arc::new(MemDisk::new());
    {
        let log = PhysicalLog::open(
            disk.clone(),
            DiskModel::zero(),
            FlushPolicy::per_request().with_serialized_append(serialized),
        )
        .expect("open log");
        let mut committed = Lsn(0);
        for i in 0..16 {
            committed = log.append(&rec(3, i));
        }
        log.flush_to(committed).expect("flush committed prefix");
        for i in 16..24 {
            log.append(&rec(3, i));
        }
        log.crash();
    }
    let log = PhysicalLog::open(disk, DiskModel::zero(), FlushPolicy::per_request())
        .expect("reopen after crash");
    let recovered: Vec<(u64, LogRecord)> = log
        .scan_from(Lsn(DATA_START))
        .map(|r| {
            let (lsn, record) = r.expect("clean scan after crash");
            (lsn.0, record)
        })
        .collect();
    log.close();
    recovered
}

fn pass_json(p: &PassResult) -> String {
    format!(
        concat!(
            "{{ \"elapsed_ms\": {:.3}, \"commits\": {}, \"commits_per_sec\": {:.1}, ",
            "\"device_flushes\": {}, \"flushes_per_commit\": {:.3}, ",
            "\"append_reservations\": {}, \"group_commit_batches\": {} }}"
        ),
        p.elapsed.as_secs_f64() * 1e3,
        p.commits,
        p.commits_per_sec(),
        p.flushes,
        p.flushes_per_commit(),
        p.reservations,
        p.group_batches,
    )
}

fn main() {
    let mut per_thread = 40u64;
    let mut scale = 0.25f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--per-thread" => {
                per_thread = it.next().and_then(|v| v.parse().ok()).unwrap_or(per_thread)
            }
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let ser_1 = run_pass(true, 1, per_thread, scale);
    let ser_8 = run_pass(true, 8, per_thread, scale);
    let res_1 = run_pass(false, 1, per_thread, scale);
    let res_8 = run_pass(false, 8, per_thread, scale);
    let speedup_8 = res_8.commits_per_sec() / ser_8.commits_per_sec();

    let (parity_ser, parity_res) = flush_parity(16);
    let crash_ser = crash_recovery(true);
    let crash_res = crash_recovery(false);
    let byte_identical = crash_ser == crash_res;

    // Roadmap sweep: threads × record size × group-commit window over the
    // reserved pipeline, fewer commits per point to bound the runtime.
    let sweep_commits = per_thread.min(24);
    let mut sweep_rows = Vec::new();
    for &threads in &[1u64, 4, 8] {
        for &record in &[64usize, 512, 2048] {
            for window in [None, Some(Duration::from_millis(1))] {
                let p = sweep_pass(threads, record, window, sweep_commits, scale);
                sweep_rows.push(format!(
                    concat!(
                        "{{ \"threads\": {}, \"record_bytes\": {}, ",
                        "\"window_us\": {}, \"elapsed_ms\": {:.3}, ",
                        "\"commits_per_sec\": {:.1}, \"flushes_per_commit\": {:.3}, ",
                        "\"group_commit_batches\": {} }}"
                    ),
                    threads,
                    record,
                    window.map_or(0, |w| w.as_micros()),
                    p.elapsed.as_secs_f64() * 1e3,
                    p.commits_per_sec(),
                    p.flushes_per_commit(),
                    p.group_batches,
                ));
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr2_scalable_append_path\",\n",
            "  \"workload\": {{ \"per_thread_commits\": {}, \"disk_scale\": {} }},\n",
            "  \"passes\": {{\n",
            "    \"serialized_1t\": {},\n",
            "    \"serialized_8t\": {},\n",
            "    \"reserved_1t\": {},\n",
            "    \"reserved_8t\": {}\n",
            "  }},\n",
            "  \"sweep\": [\n    {}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"speedup_8t\": {:.2},\n",
            "    \"parity_commits\": 16,\n",
            "    \"parity_flushes_serialized\": {},\n",
            "    \"parity_flushes_reserved\": {},\n",
            "    \"crash_recovered_records\": {},\n",
            "    \"crash_recovery_byte_identical\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        per_thread,
        scale,
        pass_json(&ser_1),
        pass_json(&ser_8),
        pass_json(&res_1),
        pass_json(&res_8),
        sweep_rows.join(",\n    "),
        speedup_8,
        parity_ser,
        parity_res,
        crash_res.len(),
        byte_identical,
    );

    print!("{json}");
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");

    assert!(
        speedup_8 >= 3.0,
        "reserved+group-commit must be >=3x serialized at 8 threads, got {speedup_8:.2}x"
    );
    assert_eq!(
        parity_ser, parity_res,
        "fixed commit pattern must issue identical device flushes"
    );
    assert_eq!(crash_res.len(), 16, "exactly the committed prefix survives");
    assert!(byte_identical, "both pipelines recover identical state");
    eprintln!(
        "wrote BENCH_PR2.json ({speedup_8:.2}x at 8 threads, \
         {parity_ser}=={parity_res} parity flushes)"
    );
}
