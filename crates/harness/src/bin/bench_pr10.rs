//! Macro-benchmark for the process-wide buffer pool, overlapped
//! recovery, and the adaptive logging diet (PR 10).
//!
//! **Part A — cold-cache MTTR.** Builds the §5.2-flavoured crash image
//! (interleaved sessions, checkpoints disabled so every replay window
//! spans the whole log), then restarts it under a scaled disk model with
//! the overlap machinery toggled: the cold baseline (no scan-fed
//! warm-in, no longest-first prefetcher — replay demand-reads the whole
//! log a second time), each knob alone, and the full configuration. The
//! gate requires the full configuration to beat the cold baseline by
//! ≥1.3× on restart-to-recovered wall clock. The replacement policies
//! are swept at the full configuration for the record.
//!
//! **Part B — hot-path log bytes per operation.** A solo MSP runs a
//! shared-variable RMW workload routed through a registered shared op;
//! the identical call sequence is driven with the adaptive diet off
//! (every RMW logs the read-DV + full-value write pair) and on (a
//! compact `SharedOp` record while the chain stays short). The gate
//! requires ≥20% fewer appended log bytes per call under the diet.
//!
//! Results go to `BENCH_PR10.json`, mirrored on stdout.
//!
//! ```text
//! bench_pr10 [--calls N] [--scale S] [--ops N]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use msp_core::config::LoggingConfig;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_harness::metrics::RecoveryPhases;
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{Disk, DiskModel, FlushPolicy, MemDisk, PoolStatsSnapshot, ReplacementPolicy};

const MSP: MspId = MspId(1);

fn cluster() -> ClusterConfig {
    ClusterConfig::new().with_msp(MSP, DomainId(1))
}

fn base_cfg() -> MspConfig {
    MspConfig::new(MSP, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_logging(LoggingConfig {
            checkpoints_enabled: false,
            ..LoggingConfig::default()
        })
}

// ---------------------------------------------------------------- Part A

fn build_msp(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    cfg: MspConfig,
    model: DiskModel,
) -> msp_core::MspHandle {
    MspBuilder::new(cfg, cluster())
        .disk_model(model)
        .flush_policy(FlushPolicy::per_request())
        .shared_var("sv", 0u64.to_le_bytes().to_vec())
        .service("work", |ctx, payload| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            ctx.set_session("state", vec![(n % 251) as u8; 512]);
            let sv = u64::from_le_bytes(ctx.read_shared("sv")?[..8].try_into().unwrap()) + 1;
            ctx.write_shared("sv", sv.to_le_bytes().to_vec())?;
            let _ = payload;
            Ok(n.to_le_bytes().to_vec())
        })
        .start(net, disk)
        .expect("start MSP")
}

fn build_crash_image(sessions: u64, calls: u64) -> Vec<u8> {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 31 + sessions);
    let disk = Arc::new(MemDisk::new());
    let handle = build_msp(&net, Arc::clone(&disk), base_cfg(), DiskModel::zero());
    let mut clients: Vec<MspClient> = (0..sessions)
        .map(|i| MspClient::new(&net, 100 + i, Default::default()))
        .collect();
    let payload = vec![0x42u8; 100];
    for round in 0..calls {
        for (i, c) in clients.iter_mut().enumerate() {
            let r = c.call(MSP, "work", &payload).expect("load call");
            assert_eq!(
                u64::from_le_bytes(r[..8].try_into().unwrap()),
                round + 1,
                "session {i} out of step during load"
            );
        }
    }
    handle.crash();
    let image = disk.snapshot();
    net.shutdown();
    image
}

struct RunResult {
    mttr: Duration,
    phases: RecoveryPhases,
    pool: PoolStatsSnapshot,
}

impl RunResult {
    fn hit_rate(&self) -> f64 {
        let total = self.pool.pool_hits + self.pool.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool.pool_hits as f64 / total as f64
        }
    }
}

fn run_recovery(image: &[u8], cfg: MspConfig, scale: f64) -> RunResult {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 7);
    let disk = Arc::new(MemDisk::new());
    disk.write(0, image).expect("restore crash image");
    let model = DiskModel::default().with_scale(scale);
    let t0 = Instant::now();
    let handle = build_msp(&net, Arc::clone(&disk), cfg, model);
    msp_harness::await_recovery(&handle, Duration::from_secs(120), "bench_pr10");
    let mttr = t0.elapsed();
    let stats = handle.stats();
    let pool = handle.pool_stats();
    handle.shutdown();
    net.shutdown();
    RunResult {
        mttr,
        phases: RecoveryPhases::from_stats(&stats),
        pool,
    }
}

fn recovery_json(mode: &str, policy: &str, r: &RunResult) -> String {
    format!(
        concat!(
            "{{ \"mode\": \"{}\", \"policy\": \"{}\", \"mttr_ms\": {:.3}, ",
            "\"analysis_ms\": {:.3}, \"replay_ms\": {:.3}, ",
            "\"pool_hits\": {}, \"pool_misses\": {}, \"pool_evictions\": {}, ",
            "\"pool_prefetch_hits\": {}, \"pool_prefetched_blocks\": {}, ",
            "\"hit_rate\": {:.3} }}"
        ),
        mode,
        policy,
        r.mttr.as_secs_f64() * 1e3,
        r.phases.analysis_ms(),
        r.phases.replay_ms(),
        r.pool.pool_hits,
        r.pool.pool_misses,
        r.pool.pool_evictions,
        r.pool.pool_prefetch_hits,
        r.pool.pool_prefetched_blocks,
        r.hit_rate(),
    )
}

// ---------------------------------------------------------------- Part B

/// Solo MSP whose service routes its shared-variable RMW through the
/// registered `add` op; with the diet off the same call logs the
/// read-DV + full-value pair instead.
fn build_diet_msp(
    net: &Network<Envelope>,
    disk: Arc<MemDisk>,
    adaptive: bool,
) -> msp_core::MspHandle {
    MspBuilder::new(
        base_cfg().with_workers(2).with_adaptive_logging(adaptive),
        cluster(),
    )
    .disk_model(DiskModel::zero())
    .shared_var("total", vec![0u8; 256])
    .shared_op("add", |old, args| {
        let n = u64::from_le_bytes(old[..8].try_into().unwrap())
            + u64::from(args.first().copied().unwrap_or(1));
        let mut v = vec![0u8; 256];
        v[..8].copy_from_slice(&n.to_le_bytes());
        v
    })
    .service("tick", |ctx, payload| {
        let n = ctx
            .get_session("n")
            .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
            .unwrap_or(0)
            + 1;
        ctx.set_session("n", n.to_le_bytes().to_vec());
        ctx.apply_shared("total", "add", payload)?;
        Ok(n.to_le_bytes().to_vec())
    })
    .start(net, disk)
    .expect("start diet MSP")
}

/// Drive `ops` RMW calls and return appended log bytes per call.
fn run_diet(adaptive: bool, ops: u64) -> f64 {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 17);
    let disk = Arc::new(MemDisk::new());
    let handle = build_diet_msp(&net, Arc::clone(&disk), adaptive);
    let mut client = MspClient::new(&net, 1, Default::default());
    for i in 1..=ops {
        let r = client.call(MSP, "tick", &[1]).expect("diet call");
        assert_eq!(u64::from_le_bytes(r[..8].try_into().unwrap()), i);
    }
    let appended = handle
        .log_stats()
        .expect("log-based MSP has log stats")
        .appended_bytes;
    let total = handle.dump_shared()[0].clone();
    assert_eq!(
        u64::from_le_bytes(total[..8].try_into().unwrap()),
        ops,
        "RMW total wrong (adaptive={adaptive})"
    );
    handle.shutdown();
    net.shutdown();
    appended as f64 / ops as f64
}

fn main() {
    let mut calls = 24u64;
    let mut scale = 0.05f64;
    let mut ops = 2000u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--calls" => calls = it.next().and_then(|v| v.parse().ok()).unwrap_or(calls),
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--ops" => ops = it.next().and_then(|v| v.parse().ok()).unwrap_or(ops),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    let sessions = 64u64;

    // Part A: cold baseline vs each overlap knob vs the full machinery.
    let image = build_crash_image(sessions, calls);
    eprintln!(
        "crash image: {} sessions x {} calls, {} KB of log",
        sessions,
        calls,
        image.len() / 1024
    );
    let pool_cfg = || {
        base_cfg()
            .with_recovery_threads(8)
            .with_replay_cache_blocks(64)
    };
    let mut rows: Vec<String> = Vec::new();

    let cold = run_recovery(
        &image,
        pool_cfg()
            .with_overlapped_recovery(false)
            .with_recovery_prefetch(false),
        scale,
    );
    rows.push(recovery_json("cold", "clock", &cold));
    eprintln!(
        "  cold (no warm-in, no prefetch): MTTR {:.1} ms (replay {:.1} ms, hit rate {:.2})",
        cold.mttr.as_secs_f64() * 1e3,
        cold.phases.replay_ms(),
        cold.hit_rate()
    );

    let overlap_only = run_recovery(
        &image,
        pool_cfg()
            .with_overlapped_recovery(true)
            .with_recovery_prefetch(false),
        scale,
    );
    rows.push(recovery_json("overlap", "clock", &overlap_only));
    let prefetch_only = run_recovery(
        &image,
        pool_cfg()
            .with_overlapped_recovery(false)
            .with_recovery_prefetch(true),
        scale,
    );
    rows.push(recovery_json("prefetch", "clock", &prefetch_only));

    let mut full_speedup = 0.0f64;
    let mut full_hit_rate = 0.0f64;
    for policy in [
        ReplacementPolicy::Clock,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Sieve,
    ] {
        let full = run_recovery(&image, pool_cfg().with_replacement_policy(policy), scale);
        let speedup = cold.mttr.as_secs_f64() / full.mttr.as_secs_f64();
        eprintln!(
            "  full/{}: MTTR {:.1} ms ({speedup:.2}x vs cold, hit rate {:.2}, {} warmed blocks)",
            policy.name(),
            full.mttr.as_secs_f64() * 1e3,
            full.hit_rate(),
            full.pool.pool_prefetched_blocks
        );
        if policy == ReplacementPolicy::Clock {
            full_speedup = speedup;
            full_hit_rate = full.hit_rate();
        }
        rows.push(recovery_json("full", policy.name(), &full));
    }

    // Part B: log bytes per RMW call, diet off vs on.
    let bytes_value = run_diet(false, ops);
    let bytes_op = run_diet(true, ops);
    let reduction = 1.0 - bytes_op / bytes_value;
    eprintln!(
        "  diet: {bytes_value:.0} B/call value-logged -> {bytes_op:.0} B/call op-logged \
         ({:.1}% reduction over {ops} calls)",
        reduction * 100.0
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr10_buffer_pool_and_diet\",\n",
            "  \"workload\": {{ \"sessions\": {}, \"calls_per_session\": {}, ",
            "\"disk_scale\": {}, \"diet_ops\": {}, \"checkpoints\": false }},\n",
            "  \"recovery_runs\": [\n    {}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"cold_mttr_ms\": {:.3},\n",
            "    \"full_speedup\": {:.2},\n",
            "    \"full_hit_rate\": {:.3},\n",
            "    \"log_bytes_per_op_value\": {:.1},\n",
            "    \"log_bytes_per_op_diet\": {:.1},\n",
            "    \"diet_reduction\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        sessions,
        calls,
        scale,
        ops,
        rows.join(",\n    "),
        cold.mttr.as_secs_f64() * 1e3,
        full_speedup,
        full_hit_rate,
        bytes_value,
        bytes_op,
        reduction,
    );

    print!("{json}");
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");

    assert!(
        full_speedup >= 1.3,
        "overlapped+prefetched recovery must beat the cold pool by >=1.3x, \
         got {full_speedup:.2}x"
    );
    assert!(
        reduction >= 0.20,
        "the adaptive diet must cut >=20% of hot-path log bytes per op, \
         got {:.1}%",
        reduction * 100.0
    );
    eprintln!(
        "wrote BENCH_PR10.json ({full_speedup:.2}x cold-cache MTTR, \
         {:.1}% log-byte reduction)",
        reduction * 100.0
    );
}
