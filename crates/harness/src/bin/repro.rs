//! Regenerate every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! repro [--scale S] [--requests N] [--quick] [--only fig14|fig15|fig16|fig17|ablation]
//! ```
//!
//! * `--scale` — global time scale (default 0.1: all simulated latencies
//!   are a tenth of the paper's; reported numbers are normalized back).
//! * `--requests` — end-client requests per measured cell (default 400;
//!   the paper used 20 000).
//! * `--quick` — small counts for a fast smoke run.
//!
//! Output is markdown, suitable for pasting into `EXPERIMENTS.md`.

use msp_harness::experiments::{
    self, CrashRateRow, Fig14Row, MaxRtRow, MultiClientRow, ThresholdRow,
};

struct Args {
    scale: f64,
    requests: u64,
    only: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.1,
        requests: experiments::DEFAULT_REQUESTS,
        only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.scale),
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.requests)
            }
            "--quick" => args.requests = 100,
            "--only" => args.only = it.next(),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    args
}

fn fmt_ms(v: f64) -> String {
    format!("{v:.2}")
}

fn print_fig14(rows: &[Fig14Row], title: &str) {
    println!("\n## {title}\n");
    println!("| config | m | avg RT (paper-ms) | p95 | max | throughput (paper req/s) |");
    println!("|---|---|---|---|---|---|");
    for r in rows {
        let s = r.summary;
        println!(
            "| {} | {} | {} | {} | {} | {:.1} |",
            r.config.name(),
            r.m,
            fmt_ms(s.avg_ms_paper(r.time_scale)),
            fmt_ms(s.p95.as_secs_f64() * 1e3 / r.time_scale.max(1e-9)),
            fmt_ms(s.max_ms_paper(r.time_scale)),
            s.throughput_paper(r.time_scale),
        );
    }
}

fn print_thresholds(rows: &[ThresholdRow], title: &str) {
    println!("\n## {title}\n");
    println!("| ckpt threshold | crash every | crashes | throughput (paper req/s) | avg RT (paper-ms) | max RT |");
    println!("|---|---|---|---|---|---|");
    for r in rows {
        let s = r.summary;
        let th = r
            .threshold
            .map(|t| format!("{} KB", t >> 10))
            .unwrap_or_else(|| "none".into());
        println!(
            "| {} | {} | {} | {:.1} | {} | {} |",
            th,
            if r.crash_every == 0 {
                "-".into()
            } else {
                r.crash_every.to_string()
            },
            r.crashes,
            s.throughput_paper(r.time_scale),
            fmt_ms(s.avg_ms_paper(r.time_scale)),
            fmt_ms(s.max_ms_paper(r.time_scale)),
        );
    }
}

fn print_crash_rates(rows: &[CrashRateRow]) {
    println!("\n## Figure 15(b): throughput vs crash rate\n");
    println!("| config | crash every N requests | crashes | throughput (paper req/s) | avg RT (paper-ms) |");
    println!("|---|---|---|---|---|");
    for r in rows {
        let s = r.summary;
        println!(
            "| {} | {} | {} | {:.1} | {} |",
            r.config.name(),
            if r.crash_every == 0 {
                "never".into()
            } else {
                r.crash_every.to_string()
            },
            r.crashes,
            s.throughput_paper(r.time_scale),
            fmt_ms(s.avg_ms_paper(r.time_scale)),
        );
    }
}

fn print_maxrt(rows: &[MaxRtRow]) {
    println!("\n## Figure 16 table: maximum response time\n");
    println!("| configuration | max RT (paper-ms) | avg RT (paper-ms) | crashes |");
    println!("|---|---|---|---|");
    for r in rows {
        let s = r.summary;
        println!(
            "| {} | {} | {} | {} |",
            r.label,
            fmt_ms(s.max_ms_paper(r.time_scale)),
            fmt_ms(s.avg_ms_paper(r.time_scale)),
            r.crashes,
        );
    }
}

fn print_fig17(rows: &[MultiClientRow]) {
    println!("\n## Figure 17: multiple clients, batch flushing\n");
    println!("| config | flush mode | clients | throughput (paper req/s) | avg RT (paper-ms) |");
    println!("|---|---|---|---|---|");
    for r in rows {
        let s = r.summary;
        println!(
            "| {} | {:?} | {} | {:.1} | {} |",
            r.config.name(),
            r.mode,
            r.clients,
            s.throughput_paper(r.time_scale),
            fmt_ms(s.avg_ms_paper(r.time_scale)),
        );
    }
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let n = args.requests;
    let want = |name: &str| args.only.as_deref().is_none_or(|o| o == name);
    println!("# Reproduction run — scale {scale}, {n} requests per cell");

    if want("fig14") {
        print_fig14(
            &experiments::fig14_table(scale, n),
            "Figure 14 table: response time, m = 1",
        );
        print_fig14(
            &experiments::fig14_chart(scale, n),
            "Figure 14 chart: response time vs calls to ServiceMethod2",
        );
    }
    if want("fig15") {
        print_thresholds(
            &experiments::fig15a(scale, n),
            "Figure 15(a): throughput vs checkpointing threshold",
        );
        print_crash_rates(&experiments::fig15b(scale, n));
    }
    if want("fig16") {
        print_maxrt(&experiments::fig16_table(scale, n));
        print_thresholds(
            &experiments::fig16_chart(scale, n),
            "Figure 16 chart: throughput at fixed crash rate vs checkpointing threshold",
        );
    }
    if want("fig17") {
        print_fig17(&experiments::fig17(scale, n / 2, 8));
    }
    if want("ablation") {
        println!("\n## Ablation: logging overhead per request\n");
        println!("| config | m | flushes/req | sectors/req | padded B/req | log B/req |");
        println!("|---|---|---|---|---|---|");
        for r in experiments::ablation_logging_overhead(scale, n) {
            println!(
                "| {} | {} | {:.2} | {:.2} | {:.0} | {:.0} |",
                r.config.name(),
                r.m,
                r.flushes_per_request,
                r.sectors_per_request,
                r.padded_bytes_per_request,
                r.log_bytes_per_request,
            );
        }
        println!("\n## Ablation: batch-flush timeout sweep (4 clients, pessimistic)\n");
        println!("| timeout (ms) | throughput (paper req/s) | avg RT (paper-ms) |");
        println!("|---|---|---|");
        for (ms, s) in experiments::ablation_batch_timeout(scale, n / 2) {
            println!(
                "| {} | {:.1} | {} |",
                ms,
                s.throughput_paper(scale),
                fmt_ms(s.avg_ms_paper(scale)),
            );
        }
    }
}
