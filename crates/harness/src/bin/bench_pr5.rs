//! Macro-benchmark for the asynchronous durability pipeline (PR 5).
//!
//! Boots the LoOptimistic world and drives the paper workload through
//! both durability paths:
//!
//! * **blocking** — the pre-pipeline baseline: the worker thread parks
//!   inside `distributed_flush` for the full disk-flush (and flush-RPC)
//!   latency of every client-facing reply, and
//! * **pipelined** — flush-ticket issue + reply-release stage: the
//!   worker hands the reply envelope to the release thread and pulls the
//!   next request immediately; the reply leaves once its gate settles.
//!
//! The sweep maps committed-reply throughput and p50/p99 response times
//! over worker threads × disk-flush latency (time scale). Every reply a
//! client observes is a *committed* reply — the release stage only lets
//! it leave after its durability gate settles — so the two paths are
//! compared on identical guarantees. Results go to `BENCH_PR5.json`,
//! mirrored on stdout.
//!
//! ```text
//! bench_pr5 [--per-client N] [--clients-per-worker N]
//! ```

use std::time::Duration;

use msp_harness::{FlushMode, SystemConfig, World, WorldOptions};

/// Workers per sweep row; the 8-thread slow-disk row carries the
/// headline speedup assertion.
const WORKERS: [usize; 4] = [1, 2, 4, 8];
/// Disk/network time scales (1.0 = the paper's native milliseconds):
/// 0.1 is the harness default, 0.25 the slow-disk point where blocking
/// on the flush hurts most.
const SCALES: [f64; 2] = [0.1, 0.25];
/// Intra-domain calls per request (optimistic, never block a reply).
const M: u8 = 1;

struct Cell {
    scale: f64,
    workers: usize,
    blocking: bool,
    clients: u64,
    requests: u64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    tickets_issued: u64,
    tickets_completed: u64,
    async_releases: u64,
    gates_pending_end: u64,
}

fn run_cell(scale: f64, workers: usize, blocking: bool, per_client: u64, cpw: u64) -> Cell {
    let world = World::start(WorldOptions {
        time_scale: scale,
        workers,
        blocking_durability: blocking,
        // Group commit, so the flusher device is not the per-commit
        // serial bottleneck: a single watermark sweep completes every
        // ticket the write covered. Under per-request flushing both
        // paths just saturate the device at one write per reply.
        flush_mode: FlushMode::GroupCommit,
        // Keep checkpoints out of the measurement: the pipeline's win is
        // in the per-reply flush path.
        session_ckpt_threshold: u64::MAX,
        checkpoints_enabled: false,
        db_txn_overhead: Duration::ZERO,
        ..WorldOptions::new(SystemConfig::LoOptimistic)
    });
    let clients = cpw * workers as u64;
    let series = world.run_concurrent(clients, per_client, M);
    let sum = series.summary();
    let log1 = world.msp1.log_stats().expect("MSP1 up");
    let stats1 = world.msp1.stats().expect("MSP1 up");
    world.shutdown();
    Cell {
        scale,
        workers,
        blocking,
        clients,
        requests: sum.count,
        throughput: sum.throughput,
        p50_ms: sum.p50.as_secs_f64() * 1e3,
        p99_ms: sum.p99.as_secs_f64() * 1e3,
        tickets_issued: log1.flush_tickets_issued,
        tickets_completed: log1.flush_tickets_completed,
        async_releases: stats1.async_reply_releases,
        gates_pending_end: stats1.gates_pending,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "{{ \"scale\": {}, \"workers\": {}, \"mode\": \"{}\", ",
            "\"clients\": {}, \"requests\": {}, ",
            "\"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, ",
            "\"flush_tickets_issued\": {}, \"flush_tickets_completed\": {}, ",
            "\"async_reply_releases\": {}, \"gates_pending_end\": {} }}"
        ),
        c.scale,
        c.workers,
        if c.blocking { "blocking" } else { "pipelined" },
        c.clients,
        c.requests,
        c.throughput,
        c.p50_ms,
        c.p99_ms,
        c.tickets_issued,
        c.tickets_completed,
        c.async_releases,
        c.gates_pending_end,
    )
}

fn main() {
    let mut per_client = 40u64;
    let mut cpw = 4u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--per-client" => {
                per_client = it.next().and_then(|v| v.parse().ok()).unwrap_or(per_client)
            }
            "--clients-per-worker" => cpw = it.next().and_then(|v| v.parse().ok()).unwrap_or(cpw),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let mut cells = Vec::new();
    for &scale in &SCALES {
        for &workers in &WORKERS {
            // The 1-worker cells carry the p99-regression assertion;
            // give them more samples so the tail is stable.
            let n = if workers == 1 {
                per_client * 3
            } else {
                per_client
            };
            for blocking in [true, false] {
                cells.push(run_cell(scale, workers, blocking, n, cpw));
            }
        }
    }

    let find = |scale: f64, workers: usize, blocking: bool| {
        cells
            .iter()
            .find(|c| c.scale == scale && c.workers == workers && c.blocking == blocking)
            .expect("cell exists")
    };
    let slow = *SCALES.last().expect("non-empty");
    let speedup_8w = find(slow, 8, false).throughput / find(slow, 8, true).throughput;
    let p99_ratio_1w = find(slow, 1, false).p99_ms / find(slow, 1, true).p99_ms;
    let pipelined_ok = cells
        .iter()
        .filter(|c| !c.blocking)
        .all(|c| c.gates_pending_end == 0 && c.async_releases > 0 && c.tickets_issued > 0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr5_async_durability_pipeline\",\n",
            "  \"workload\": {{ \"per_client_requests\": {}, ",
            "\"clients_per_worker\": {}, \"m\": {} }},\n",
            "  \"cells\": [\n    {}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"speedup_8w_slow_disk\": {:.2},\n",
            "    \"p99_ratio_1w_slow_disk\": {:.3},\n",
            "    \"pipeline_counters_consistent\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        per_client,
        cpw,
        M,
        cells
            .iter()
            .map(cell_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        speedup_8w,
        p99_ratio_1w,
        pipelined_ok,
    );

    print!("{json}");
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");

    assert!(
        speedup_8w >= 2.0,
        "pipelined must be >=2x blocking at 8 workers on the slow disk, got {speedup_8w:.2}x"
    );
    assert!(
        p99_ratio_1w <= 1.25,
        "pipelining must not regress single-worker p99 by >25%, got {p99_ratio_1w:.3}x"
    );
    assert!(
        pipelined_ok,
        "pipelined cells must drain gates_pending to 0 and release replies asynchronously"
    );
    eprintln!(
        "wrote BENCH_PR5.json ({speedup_8w:.2}x at 8 workers slow disk, \
         1-worker p99 ratio {p99_ratio_1w:.3})"
    );
}
