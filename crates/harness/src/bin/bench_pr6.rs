//! Macro-benchmark for fully asynchronous call chains (PR 6).
//!
//! Boots the **Pessimistic** world — MSP1 and MSP2 in separate service
//! domains, so every `ServiceMethod1 → ServiceMethod2` hop crosses a
//! domain boundary and must flush the sender's dependencies before the
//! message may leave (§3.1) — and drives deep chains through both send
//! paths:
//!
//! * **blocking-send** — the PR 5 state of the world: replies are
//!   pipelined through the release stage, but each of the `m` outgoing
//!   sends still parks the worker inside `distributed_flush` for the
//!   full disk-flush latency, once per hop; and
//! * **pipelined** — flush-ticket issue + envelope release: the worker
//!   parks the outgoing envelope behind its durability gate and hands
//!   its run token to a sibling thread until the gate settles, so the
//!   flush of hop *i* overlaps other sessions' work instead of a parked
//!   worker.
//!
//! The sweep maps committed chain throughput and p50/p99 response times
//! over chain depth (`m`) × worker threads × disk-flush latency, plus
//! the mean per-hop wait (`chain_hop_wait_nanos / (requests · m)`) that
//! shows *where* the win comes from. Both paths deliver identical
//! guarantees — a send leaves only after the DV it carries is durable —
//! so the comparison is apples to apples. Results go to
//! `BENCH_PR6.json`, mirrored on stdout.
//!
//! ```text
//! bench_pr6 [--per-client N] [--clients-per-worker N]
//! ```

use std::time::Duration;

use msp_harness::{FlushMode, SystemConfig, World, WorldOptions};

/// Workers per sweep row; the 8-thread slow-disk m=4 row carries the
/// headline speedup assertion.
const WORKERS: [usize; 4] = [1, 2, 4, 8];
/// Disk/network time scales (1.0 = the paper's native milliseconds):
/// 0.1 is the harness default, 0.25 the slow-disk point where a worker
/// parked per hop hurts most.
const SCALES: [f64; 2] = [0.1, 0.25];
/// Chain depths: m sequential cross-domain calls per request.
const MS: [u8; 2] = [2, 4];

struct Cell {
    scale: f64,
    workers: usize,
    m: u8,
    blocking_send: bool,
    clients: u64,
    requests: u64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    hop_wait_ms_mean: f64,
    async_send_releases: u64,
    send_gates_pending_end: u64,
    worker_parks: u64,
}

fn run_cell(
    scale: f64,
    workers: usize,
    m: u8,
    blocking_send: bool,
    per_client: u64,
    cpw: u64,
) -> Cell {
    let world = World::start(WorldOptions {
        time_scale: scale,
        workers,
        // Replies stay pipelined (PR 5) on both paths; only the
        // outgoing-send flush toggles, so the delta is the send path.
        blocking_durability: false,
        blocking_send_durability: blocking_send,
        // Group commit, so the flusher device is not the per-commit
        // serial bottleneck: a single watermark sweep completes every
        // ticket the write covered.
        flush_mode: FlushMode::GroupCommit,
        // Keep checkpoints out of the measurement: the win is in the
        // per-hop flush path.
        session_ckpt_threshold: u64::MAX,
        checkpoints_enabled: false,
        db_txn_overhead: Duration::ZERO,
        ..WorldOptions::new(SystemConfig::Pessimistic)
    });
    let clients = cpw * workers as u64;
    let series = world.run_concurrent(clients, per_client, m);
    let sum = series.summary();
    let stats1 = world.msp1.stats().expect("MSP1 up");
    world.shutdown();
    let hops = sum.count.max(1) * m as u64;
    Cell {
        scale,
        workers,
        m,
        blocking_send,
        clients,
        requests: sum.count,
        throughput: sum.throughput,
        p50_ms: sum.p50.as_secs_f64() * 1e3,
        p99_ms: sum.p99.as_secs_f64() * 1e3,
        hop_wait_ms_mean: stats1.chain_hop_wait_nanos as f64 / hops as f64 / 1e6,
        async_send_releases: stats1.async_send_releases,
        send_gates_pending_end: stats1.send_gates_pending,
        worker_parks: stats1.worker_parks,
    }
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "{{ \"scale\": {}, \"workers\": {}, \"m\": {}, \"mode\": \"{}\", ",
            "\"clients\": {}, \"requests\": {}, ",
            "\"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, ",
            "\"hop_wait_ms_mean\": {:.3}, ",
            "\"async_send_releases\": {}, \"send_gates_pending_end\": {}, ",
            "\"worker_parks\": {} }}"
        ),
        c.scale,
        c.workers,
        c.m,
        if c.blocking_send {
            "blocking-send"
        } else {
            "pipelined"
        },
        c.clients,
        c.requests,
        c.throughput,
        c.p50_ms,
        c.p99_ms,
        c.hop_wait_ms_mean,
        c.async_send_releases,
        c.send_gates_pending_end,
        c.worker_parks,
    )
}

fn main() {
    let mut per_client = 30u64;
    let mut cpw = 4u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--per-client" => {
                per_client = it.next().and_then(|v| v.parse().ok()).unwrap_or(per_client)
            }
            "--clients-per-worker" => cpw = it.next().and_then(|v| v.parse().ok()).unwrap_or(cpw),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let mut cells = Vec::new();
    for &scale in &SCALES {
        for &m in &MS {
            for &workers in &WORKERS {
                // The 1-worker cells carry the p99-regression assertion;
                // give them more samples so the tail is stable.
                let n = if workers == 1 {
                    per_client * 3
                } else {
                    per_client
                };
                for blocking_send in [true, false] {
                    cells.push(run_cell(scale, workers, m, blocking_send, n, cpw));
                }
            }
        }
    }

    let find = |scale: f64, workers: usize, m: u8, blocking_send: bool| {
        cells
            .iter()
            .find(|c| {
                c.scale == scale
                    && c.workers == workers
                    && c.m == m
                    && c.blocking_send == blocking_send
            })
            .expect("cell exists")
    };
    let slow = *SCALES.last().expect("non-empty");
    let deep = *MS.last().expect("non-empty");
    let speedup_8w_m4 =
        find(slow, 8, deep, false).throughput / find(slow, 8, deep, true).throughput;
    let p99_ratio_1w = find(slow, 1, deep, false).p99_ms / find(slow, 1, deep, true).p99_ms;
    let hop_ratio_8w =
        find(slow, 8, deep, false).hop_wait_ms_mean / find(slow, 8, deep, true).hop_wait_ms_mean;
    let pipelined_ok = cells
        .iter()
        .filter(|c| !c.blocking_send)
        .all(|c| c.send_gates_pending_end == 0 && c.async_send_releases > 0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr6_async_call_chains\",\n",
            "  \"workload\": {{ \"per_client_requests\": {}, ",
            "\"clients_per_worker\": {}, \"ms\": [2, 4], ",
            "\"config\": \"Pessimistic\" }},\n",
            "  \"cells\": [\n    {}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"speedup_8w_m4_slow_disk\": {:.2},\n",
            "    \"p99_ratio_1w_m4_slow_disk\": {:.3},\n",
            "    \"hop_wait_ratio_8w_m4_slow_disk\": {:.3},\n",
            "    \"send_pipeline_counters_consistent\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        per_client,
        cpw,
        cells
            .iter()
            .map(cell_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        speedup_8w_m4,
        p99_ratio_1w,
        hop_ratio_8w,
        pipelined_ok,
    );

    print!("{json}");
    std::fs::write("BENCH_PR6.json", &json).expect("write BENCH_PR6.json");

    assert!(
        speedup_8w_m4 >= 2.0,
        "pipelined sends must be >=2x blocking sends at m=4, 8 workers, slow disk, \
         got {speedup_8w_m4:.2}x"
    );
    assert!(
        p99_ratio_1w <= 1.25,
        "send pipelining must not regress single-worker p99 by >25%, got {p99_ratio_1w:.3}x"
    );
    assert!(
        pipelined_ok,
        "pipelined cells must drain send_gates_pending to 0 and release sends asynchronously"
    );
    eprintln!(
        "wrote BENCH_PR6.json ({speedup_8w_m4:.2}x at m=4, 8 workers, slow disk; \
         1-worker p99 ratio {p99_ratio_1w:.3})"
    );
}
