//! Micro-benchmark for the durability-watermark layer (PR 1).
//!
//! Runs the same steady-state two-MSP workload twice — watermarks on and
//! off — and reports the flush traffic of each pass as JSON (written to
//! `BENCH_PR1.json`, mirrored on stdout).
//!
//! Workload shape: a client session makes one `relay` call (creating a
//! durable dependency on the back MSP), then `locals_per_round` front-only
//! calls. Every client-bound reply performs a distributed flush of the
//! session DV, so each front-only call re-flushes the same back
//! dependency — redundant work that the watermark table elides.
//!
//! ```text
//! bench_pr1 [--rounds N] [--locals K]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use msp_core::client::ClientOptions;
use msp_core::runtime::RuntimeStatsSnapshot;
use msp_core::{ClusterConfig, Envelope, MspBuilder, MspClient, MspConfig};
use msp_net::{NetModel, Network};
use msp_types::{DomainId, MspId};
use msp_wal::{DiskModel, FlushPolicy, MemDisk};

const FRONT: MspId = MspId(1);
const BACK: MspId = MspId(2);

struct PassResult {
    elapsed: Duration,
    requests: u64,
    front: RuntimeStatsSnapshot,
    back: RuntimeStatsSnapshot,
    front_log_flushes: u64,
    back_log_flushes: u64,
}

fn cfg(id: MspId, watermarks: bool) -> MspConfig {
    let mut c = MspConfig::new(id, DomainId(1))
        .with_time_scale(0.0)
        .with_workers(4)
        .with_durability_watermarks(watermarks);
    c.rpc_timeout = Duration::from_millis(60);
    c
}

fn run_pass(watermarks: bool, rounds: u64, locals_per_round: u64) -> PassResult {
    let net: Network<Envelope> = Network::new(NetModel::zero(), 42);
    let cluster = ClusterConfig::new()
        .with_msp(FRONT, DomainId(1))
        .with_msp(BACK, DomainId(1));

    let back = MspBuilder::new(cfg(BACK, watermarks), cluster.clone())
        .disk_model(DiskModel::zero())
        .flush_policy(FlushPolicy::per_request())
        .service("count", |ctx, _| {
            let n = ctx
                .get_session("n")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("n", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(&net, Arc::new(MemDisk::new()))
        .expect("start back");
    let front = MspBuilder::new(cfg(FRONT, watermarks), cluster)
        .disk_model(DiskModel::zero())
        .flush_policy(FlushPolicy::per_request())
        .service("relay", |ctx, payload| ctx.call(BACK, "count", payload))
        .service("local", |ctx, _| {
            let n = ctx
                .get_session("m")
                .map(|v| u64::from_le_bytes(v.try_into().unwrap()))
                .unwrap_or(0)
                + 1;
            ctx.set_session("m", n.to_le_bytes().to_vec());
            Ok(n.to_le_bytes().to_vec())
        })
        .start(&net, Arc::new(MemDisk::new()))
        .expect("start front");

    let mut client = MspClient::new(&net, 1, ClientOptions::default());
    let mut requests = 0u64;
    let t0 = Instant::now();
    for _ in 0..rounds {
        client.call(FRONT, "relay", &[]).expect("relay");
        requests += 1;
        for _ in 0..locals_per_round {
            client.call(FRONT, "local", &[]).expect("local");
            requests += 1;
        }
    }
    let elapsed = t0.elapsed();

    let result = PassResult {
        elapsed,
        requests,
        front: front.stats(),
        back: back.stats(),
        front_log_flushes: front.log_stats().map_or(0, |s| s.flushes),
        back_log_flushes: back.log_stats().map_or(0, |s| s.flushes),
    };
    front.shutdown();
    back.shutdown();
    net.shutdown();
    result
}

fn pass_json(p: &PassResult) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"elapsed_ms\": {:.3},\n",
            "      \"requests\": {},\n",
            "      \"distributed_flushes\": {},\n",
            "      \"flush_rpcs_elided\": {},\n",
            "      \"flushes_elided\": {},\n",
            "      \"back_flush_requests_served\": {},\n",
            "      \"front_device_flushes\": {},\n",
            "      \"back_device_flushes\": {}\n",
            "    }}"
        ),
        p.elapsed.as_secs_f64() * 1e3,
        p.requests,
        p.front.distributed_flushes,
        p.front.flush_rpcs_elided,
        p.front.flushes_elided,
        p.back.flush_requests_served,
        p.front_log_flushes,
        p.back_log_flushes,
    )
}

fn main() {
    let mut rounds = 20u64;
    let mut locals = 19u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => rounds = it.next().and_then(|v| v.parse().ok()).unwrap_or(rounds),
            "--locals" => locals = it.next().and_then(|v| v.parse().ok()).unwrap_or(locals),
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let on = run_pass(true, rounds, locals);
    let off = run_pass(false, rounds, locals);

    let rpcs_on = on.back.flush_requests_served;
    let rpcs_off = off.back.flush_requests_served;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr1_durability_watermarks\",\n",
            "  \"workload\": {{ \"rounds\": {}, \"locals_per_round\": {} }},\n",
            "  \"passes\": {{\n",
            "    \"watermarks_on\": {},\n",
            "    \"watermarks_off\": {}\n",
            "  }},\n",
            "  \"summary\": {{\n",
            "    \"flush_rpcs_on\": {},\n",
            "    \"flush_rpcs_off\": {},\n",
            "    \"flush_rpcs_saved\": {},\n",
            "    \"device_flushes_on\": {},\n",
            "    \"device_flushes_off\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        rounds,
        locals,
        pass_json(&on),
        pass_json(&off),
        rpcs_on,
        rpcs_off,
        rpcs_off.saturating_sub(rpcs_on),
        on.front_log_flushes + on.back_log_flushes,
        off.front_log_flushes + off.back_log_flushes,
    );

    print!("{json}");
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    assert!(
        rpcs_on < rpcs_off,
        "watermarks must strictly reduce flush RPCs ({rpcs_on} vs {rpcs_off})"
    );
    eprintln!("wrote BENCH_PR1.json ({rpcs_on} flush RPCs with watermarks, {rpcs_off} without)");
}
