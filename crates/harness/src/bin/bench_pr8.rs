//! Open-loop scale-out benchmark for the striped WAL + sharded runtime
//! (PR 8).
//!
//! Boots the **LoOptimistic** world on the slow-disk model (paper disk
//! geometry at time scale `--scale`, default 0.08) with per-request
//! flushing — the paper
//! prototype's non-batched baseline, where every committed reply pays a
//! real device write — and drives a large open-loop session population
//! through it:
//!
//! * **Open loop**: request arrival times are pre-drawn from a Poisson
//!   process at `--rate` requests/s and honored regardless of
//!   completions. Response time is measured from the *scheduled arrival*,
//!   not the send, so queueing delay when the system falls behind shows
//!   up in the tail percentiles instead of silently throttling the load
//!   (the closed-loop coordinated-omission trap).
//! * **Session churn at scale**: every request runs on a fresh session
//!   and the old session is abandoned client-side but stays live in the
//!   MSP, so the live-session population grows to the full op count —
//!   `10^5+` concurrent sessions in the headline run — stressing the
//!   consistent-hash routers (session → stripe, session → shard) with a
//!   dense id range.
//!
//! The sweep maps committed-op throughput and p50/p99/p999 open-loop
//! response times over `(stripes × shards)` ∈ {1×1, 2×2, 4×4} at a fixed
//! worker count. `1×1` runs the legacy single-log unsharded path
//! (`log_stripes = 0`), so the comparison is against the exact pre-PR
//! configuration. Per-stripe and per-shard counter breakdowns (appends,
//! flushes, merged-watermark lag, shard request spread) come along in
//! every cell. Results go to `BENCH_PR8.json`, mirrored on stdout.
//!
//! ```text
//! bench_pr8 [--ops N] [--rate R] [--drivers N] [--workers N]
//!           [--scale S] [--sweep 1x1,2x2,4x4]
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msp_harness::metrics::{ScaleOutBreakdown, Series};
use msp_harness::workload::{request_payload, MSP1};
use msp_harness::{FlushMode, SystemConfig, World, WorldOptions};

/// Default disk/net time scale: the slow-disk point (paper milliseconds
/// × 0.08), where the per-commit device write dominates and striping
/// pays even on small hosts (simulated disk waits overlap across stripe
/// flushers; CPU work does not).
const DEFAULT_SCALE: f64 = 0.08;

struct Cell {
    stripes: usize,
    shards: usize,
    workers: usize,
    ops: u64,
    committed: u64,
    sessions: u64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    late_starts: u64,
    watermark_lag_ms: f64,
    stripe_appends: Vec<u64>,
    shard_requests: Vec<u64>,
}

/// One sweep cell: boot a world with the given stripe/shard counts and
/// push the whole pre-drawn arrival schedule through it.
fn run_cell(
    stripes: usize,
    shards: usize,
    workers: usize,
    ops: u64,
    rate: f64,
    drivers: usize,
    scale: f64,
) -> Cell {
    let world = World::start(WorldOptions {
        time_scale: scale,
        workers,
        // `stripes == 1` is the legacy single-log path (log_stripes = 0),
        // so the baseline cell measures the exact pre-striping code.
        log_stripes: if stripes == 1 { 0 } else { stripes },
        runtime_shards: shards,
        flush_mode: FlushMode::PerRequest,
        // Keep checkpoints out of the measurement; the abandoned-session
        // population must also survive the run (no inactivity reaping).
        session_ckpt_threshold: u64::MAX,
        checkpoints_enabled: false,
        blocking_durability: false,
        blocking_send_durability: false,
        db_txn_overhead: Duration::ZERO,
        ..WorldOptions::new(SystemConfig::LoOptimistic)
    });

    // Pre-draw the Poisson arrival schedule (fixed seed: every cell and
    // every run replays the same offered load).
    let mut rng = StdRng::seed_from_u64(0x8EED);
    let mut arrivals = Vec::with_capacity(ops as usize);
    let mut t = 0.0f64;
    for _ in 0..ops {
        let u = (rng.random_range(0..1_000_000) as f64 + 0.5) / 1_000_000.0;
        t += -u.ln() / rate;
        arrivals.push(Duration::from_secs_f64(t));
    }

    let next = AtomicUsize::new(0);
    let late = AtomicU64::new(0);
    let payload = request_payload(1);
    let t0 = Instant::now();
    let mut series = Series::new();
    let mut last_done = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for d in 0..drivers {
            let (world, next, late, arrivals, payload) =
                (&world, &next, &late, &arrivals, &payload);
            handles.push(s.spawn(move || {
                let mut client = world.client(500_000 + d as u64);
                let mut local = Series::new();
                let mut done_at = Duration::ZERO;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&arrival) = arrivals.get(i) else {
                        break;
                    };
                    let now = t0.elapsed();
                    if now < arrival {
                        std::thread::sleep(arrival - now);
                    } else {
                        late.fetch_add(1, Ordering::Relaxed);
                    }
                    client
                        .call(MSP1, "ServiceMethod1", payload)
                        .expect("open-loop request");
                    done_at = t0.elapsed();
                    // Response time from the *scheduled* arrival.
                    local.push(done_at.saturating_sub(arrival));
                    // Fresh session next op; the old one stays live.
                    client.abandon_session(MSP1);
                }
                (local, done_at)
            }));
        }
        for h in handles {
            let (local, done_at) = h.join().expect("driver thread");
            series.merge(&local);
            last_done = last_done.max(done_at);
        }
    });
    series.set_elapsed(last_done);
    let sum = series.summary();

    let sessions = world.msp1.session_count() as u64;
    let b = ScaleOutBreakdown {
        stripes: world.msp1.stripe_stats().unwrap_or_default(),
        merged: world.msp1.log_stats().unwrap_or_default(),
        shards: world.msp1.shard_stats(),
    };
    for line in b.lines() {
        eprintln!("[{stripes}x{shards}] {line}");
    }
    world.shutdown();
    Cell {
        stripes,
        shards,
        workers,
        ops,
        committed: sum.count,
        sessions,
        throughput: sum.throughput,
        p50_ms: sum.p50.as_secs_f64() * 1e3,
        p99_ms: sum.p99.as_secs_f64() * 1e3,
        p999_ms: sum.p999.as_secs_f64() * 1e3,
        late_starts: late.load(Ordering::Relaxed),
        watermark_lag_ms: b.watermark_lag_ms(),
        stripe_appends: b.stripes.iter().map(|s| s.appends).collect(),
        shard_requests: b.shards.iter().map(|s| s.requests).collect(),
    }
}

fn u64s_json(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "{{ \"stripes\": {}, \"shards\": {}, \"workers\": {}, ",
            "\"ops\": {}, \"committed\": {}, \"live_sessions\": {}, ",
            "\"throughput_rps\": {:.1}, ",
            "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, ",
            "\"late_starts\": {}, \"watermark_lag_ms_per_flush\": {:.4}, ",
            "\"stripe_appends\": {}, \"shard_requests\": {} }}"
        ),
        c.stripes,
        c.shards,
        c.workers,
        c.ops,
        c.committed,
        c.sessions,
        c.throughput,
        c.p50_ms,
        c.p99_ms,
        c.p999_ms,
        c.late_starts,
        c.watermark_lag_ms,
        u64s_json(&c.stripe_appends),
        u64s_json(&c.shard_requests),
    )
}

fn main() {
    let mut ops = 100_000u64;
    let mut rate = 10_000.0f64;
    let mut drivers = 48usize;
    let mut workers = 8usize;
    let mut scale = DEFAULT_SCALE;
    let mut sweep: Vec<(usize, usize)> = vec![(1, 1), (2, 2), (4, 4)];
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => ops = it.next().and_then(|v| v.parse().ok()).unwrap_or(ops),
            "--rate" => rate = it.next().and_then(|v| v.parse().ok()).unwrap_or(rate),
            "--drivers" => drivers = it.next().and_then(|v| v.parse().ok()).unwrap_or(drivers),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            // e.g. --sweep 1x1,4x2,4x4 (stripes x shards per cell; the
            // first cell is the scaling baseline).
            "--sweep" => {
                if let Some(v) = it.next() {
                    sweep = v
                        .split(',')
                        .filter_map(|c| {
                            let (s, h) = c.split_once('x')?;
                            Some((s.parse().ok()?, h.parse().ok()?))
                        })
                        .collect();
                    assert!(!sweep.is_empty(), "--sweep needs stripesxshards cells");
                }
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    let mut cells = Vec::new();
    for &(stripes, shards) in &sweep {
        let c = run_cell(stripes, shards, workers, ops, rate, drivers, scale);
        eprintln!(
            "{}x{}: {:.0} ops/s committed, p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms",
            c.stripes, c.shards, c.throughput, c.p50_ms, c.p99_ms, c.p999_ms
        );
        cells.push(c);
    }

    let base = &cells[0];
    let top = cells.last().expect("non-empty sweep");
    let scaling = top.throughput / base.throughput;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pr8_striped_wal_sharded_runtime\",\n",
            "  \"workload\": {{ \"ops\": {}, \"rate_rps\": {}, ",
            "\"drivers\": {}, \"workers\": {}, \"time_scale\": {}, ",
            "\"flush\": \"per-request\", \"config\": \"LoOptimistic\", ",
            "\"arrivals\": \"poisson-open-loop\" }},\n",
            "  \"cells\": [\n    {}\n  ],\n",
            "  \"summary\": {{\n",
            "    \"throughput_scaling_1x1_to_4x4\": {:.2}\n",
            "  }}\n",
            "}}\n"
        ),
        ops,
        rate,
        drivers,
        workers,
        scale,
        cells
            .iter()
            .map(cell_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        scaling,
    );

    print!("{json}");
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");

    assert!(
        scaling >= 2.0,
        "4x4 stripes x shards must commit >=2x the single-log throughput \
         at {workers} workers on the slow-disk model, got {scaling:.2}x"
    );
    eprintln!(
        "wrote BENCH_PR8.json ({scaling:.2}x committed-op scaling 1x1 -> 4x4 at \
         {workers} workers, {} live sessions in the 4x4 cell)",
        top.sessions
    );
}
