//! Minimal `proptest`-compatible shim for offline builds.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `Strategy` trait with `prop_map`, range / tuple /
//! `Just` / `any` strategies, `collection::{vec, btree_set}`,
//! `option::of`, `prop_oneof!`, and the `proptest!` test macro with
//! `ProptestConfig`. Inputs are generated from a deterministic PRNG
//! seeded per test function, so failures reproduce across runs. There
//! is no shrinking: a failing case asserts with the generated inputs
//! visible in the panic message of the inner `assert!`.

pub mod test_runner {
    /// Deterministic generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        base: u64,
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so every test gets a distinct but
        /// stable stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { base: h, state: h }
        }

        /// Restart the stream for case `n` of the run.
        pub fn reseed_case(&mut self, n: u32) {
            self.state = self.base ^ (u64::from(n) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for struct-literal compatibility; unused (this shim
        /// never shrinks).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of type `Self::Value`. Object-safe so
    /// `prop_oneof!` can box heterogeneous arms; combinators require
    /// `Self: Sized`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Uniform choice between boxed arms; built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        pub fn with<S>(mut self, arm: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.arms.push(Box::new(arm));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below target; bound the retries
            // so narrow element domains cannot loop forever.
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Defines property test functions. Each `arg in strategy` binding is
/// regenerated `config.cases` times and the body re-run.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config = $cfg;
                let mut __pt_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __pt_case in 0..__pt_config.cases {
                    __pt_rng.reseed_case(__pt_case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __pt_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new()$(.with($arm))+
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Thing {
        A(u8),
        B,
    }

    fn arb_thing() -> impl Strategy<Value = Thing> {
        prop_oneof![any::<u8>().prop_map(Thing::A), Just(Thing::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..5, 2..6),
            s in crate::collection::btree_set(0u64..1_000, 0..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(s.len() < 4);
        }

        #[test]
        fn oneof_and_tuples_work(
            t in (0u32..4, arb_thing()),
            o in crate::option::of(1u64..9),
        ) {
            prop_assert!(t.0 < 4);
            if let Some(x) = o {
                prop_assert!((1..9).contains(&x));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1_000, 1..20);
        let run = || {
            let mut rng = TestRng::deterministic("det-check");
            (0..10)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
