//! Minimal `parking_lot`-compatible API implemented over `std::sync`.
//!
//! Only the surface used by this workspace is provided: `Mutex` /
//! `MutexGuard` (non-poisoning `lock`, `try_lock -> Option`), `RwLock`
//! with read/write guards, and `Condvar` whose `wait` / `wait_for` take
//! `&mut MutexGuard` (parking_lot style) rather than consuming the
//! guard (std style). Poisoning is swallowed, matching parking_lot's
//! semantics of not propagating panics through locks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar can temporarily take the std guard out,
    // block on the std condvar, and put the reacquired guard back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

pub struct Condvar {
    inner: std::sync::Condvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
