//! Minimal `crossbeam-channel`-compatible MPMC channel over `std::sync`.
//!
//! Provides `bounded` / `unbounded` channels whose `Sender` *and*
//! `Receiver` are `Clone` (std's receiver is not, and the workspace
//! relies on cloned receivers for worker pools), the error types with
//! crossbeam's names, and a polling `select!` macro covering the
//! `recv(rx) -> pat => expr` arm form used here.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        capacity,
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // disconnection.
            let _guard = self.shared.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.shared.lock();
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.lock();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self
                        .shared
                        .not_full
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.lock();
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.lock();
        if let Some(v) = queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Ties the `Err(RecvError)` result produced by a disconnected
/// `select!` arm to the receiver's element type so inference succeeds
/// even when the arm body never inspects the `Ok` payload.
#[doc(hidden)]
pub fn __select_disconnected<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
    Err(RecvError)
}

/// Polling `select!` over `recv(rx) -> pat => body` arms, accepting
/// crossbeam's arm grammar (block bodies need no trailing comma).
/// Checks each receiver round-robin with `try_recv`, parking briefly
/// between sweeps. A disconnected channel fires its arm with
/// `Err(RecvError)`, matching crossbeam's semantics of select
/// returning on closed channels.
#[macro_export]
macro_rules! select {
    // -- arm normalization: collect arms as `{ recv(rx) -> pat => block }` --
    (@norm [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:block , $($rest:tt)*) => {
        $crate::select!(@norm [$($done)* { recv($rx) -> $pat => $body }] $($rest)*)
    };
    (@norm [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:block $($rest:tt)*) => {
        $crate::select!(@norm [$($done)* { recv($rx) -> $pat => $body }] $($rest)*)
    };
    (@norm [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:expr , $($rest:tt)*) => {
        $crate::select!(@norm [$($done)* { recv($rx) -> $pat => { $body } }] $($rest)*)
    };
    (@norm [$($done:tt)*] recv($rx:expr) -> $pat:pat => $body:expr) => {
        $crate::select!(@norm [$($done)* { recv($rx) -> $pat => { $body } }])
    };
    // -- emission --
    (@norm [$( { recv($rx:expr) -> $pat:pat => $body:block } )+]) => {{
        loop {
            let mut __cb_shim_fired = false;
            $(
                if !__cb_shim_fired {
                    match ($rx).try_recv() {
                        Ok(__cb_shim_v) => {
                            __cb_shim_fired = true;
                            let $pat: ::std::result::Result<_, $crate::RecvError> =
                                Ok(__cb_shim_v);
                            $body
                        }
                        Err($crate::TryRecvError::Disconnected) => {
                            __cb_shim_fired = true;
                            let $pat = $crate::__select_disconnected(&$rx);
                            $body
                        }
                        Err($crate::TryRecvError::Empty) => {}
                    }
                }
            )+
            if __cb_shim_fired {
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_millis(1));
        }
    }};
    ($($arms:tt)+) => {
        $crate::select!(@norm [] $($arms)+)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cloned_receivers_share_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let handles: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|r| thread::spawn(move || r.recv().unwrap()))
            .collect();
        tx.send(10u32).unwrap();
        tx.send(20u32).unwrap();
        let mut got: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn select_fires_ready_arm() {
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx.send(7).unwrap();
        let mut hit = 0;
        select! {
            recv(rx) -> r => { hit = r.unwrap(); },
            recv(rx2) -> _r => { hit = 999; },
        }
        assert_eq!(hit, 7);
    }

    #[test]
    fn select_fires_on_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        let mut disconnected = false;
        select! {
            recv(rx) -> r => { disconnected = r.is_err(); },
        }
        assert!(disconnected);
    }
}
