//! Minimal `criterion`-compatible shim for offline builds.
//!
//! Supports the subset used by `crates/bench`: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function` (plain name or `BenchmarkId`),
//! `Bencher::{iter, iter_custom}`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Results are mean
//! wall-clock per iteration printed to stdout — no statistics, plots,
//! or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Bencher {
    samples: u64,
    iters_per_sample: u64,
    total: Duration,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.total += t0.elapsed();
            self.total_iters += self.iters_per_sample;
        }
    }

    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        black_box(f(1));
        for _ in 0..self.samples {
            self.total += f(self.iters_per_sample);
            self.total_iters += self.iters_per_sample;
        }
    }

    fn report(&self, name: &str) {
        if self.total_iters == 0 {
            println!("bench {name:<50} (no samples)");
            return;
        }
        let per_iter = self.total / self.total_iters as u32;
        println!("bench {name:<50} {per_iter:>12.2?}/iter");
    }
}

#[derive(Debug, Clone)]
struct RunConfig {
    sample_size: u64,
    iters_per_sample: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sample_size: 10,
            iters_per_sample: 3,
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    config: RunConfig,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, &id.to_string(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            config: RunConfig::default(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: RunConfig,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion takes >= 10 samples; this shim keeps runs
        // short and treats the request as an upper bound.
        self.config.sample_size = (n as u64).min(10);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&self.config, &name, f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(config: &RunConfig, name: &str, mut f: F) {
    let mut b = Bencher {
        samples: config.sample_size,
        iters_per_sample: config.iters_per_sample,
        total: Duration::ZERO,
        total_iters: 0,
    };
    f(&mut b);
    b.report(name);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_chain_and_iter_custom() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("f", 3), |b| {
            b.iter_custom(|iters| {
                calls += iters;
                Duration::from_nanos(iters)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
