//! Minimal `rand` 0.9-compatible shim: a deterministic seeded PRNG
//! with the `Rng` / `SeedableRng` trait split and `rngs::StdRng`.
//!
//! The generator is splitmix64-seeded xoshiro256++, which is more than
//! adequate for the fault-injection sampling this workspace does (it
//! is not, and does not need to be, cryptographic).

pub mod rngs {
    /// Deterministic RNG with the same name/role as `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // splitmix64 to expand the seed into full generator state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng::from_u64_seed(state)
    }
}

/// Types samplable from the uniform "standard" distribution, mirroring
/// the subset of `rand::distr::StandardUniform` this workspace needs.
pub trait StandardSample {
    fn sample_from(rng: &mut dyn RngCore) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl StandardSample for f64 {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_from(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore + Sized {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }

    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Modulo bias is irrelevant at the fidelity this shim serves.
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn random_bool_roughly_matches_p() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
